//! Query analysis, onion adjustment, rewriting, and result decryption.

use super::*;
use std::cell::RefCell;

/// Maps visible table names (aliases) in a query to schema tables.
#[derive(Clone, Debug)]
pub(crate) struct Resolver {
    /// `(visible name lowercase, real table name lowercase)` in FROM order.
    pub scopes: Vec<(String, String)>,
}

impl Resolver {
    pub fn from_select(schema: &EncSchema, sel: &Select) -> Result<Resolver, ProxyError> {
        let mut scopes = Vec::new();
        for tref in sel.from.iter().chain(sel.joins.iter().map(|j| &j.table)) {
            schema.table(&tref.name)?; // Validate.
            let visible = tref.alias.clone().unwrap_or_else(|| tref.name.clone());
            scopes.push((visible.to_lowercase(), tref.name.to_lowercase()));
        }
        Ok(Resolver { scopes })
    }

    pub fn for_table(schema: &EncSchema, name: &str) -> Result<Resolver, ProxyError> {
        schema.table(name)?;
        Ok(Resolver {
            scopes: vec![(name.to_lowercase(), name.to_lowercase())],
        })
    }

    /// Resolves a column reference to `(visible alias, table, column)`.
    pub fn resolve<'s>(
        &self,
        schema: &'s EncSchema,
        c: &ColumnRef,
    ) -> Result<(String, &'s TableState, &'s ColumnState), ProxyError> {
        let mut found: Option<(String, &TableState, &ColumnState)> = None;
        for (visible, table) in &self.scopes {
            if let Some(want) = &c.table {
                if want.to_lowercase() != *visible {
                    continue;
                }
            }
            let t = schema.table(table)?;
            if let Some(col) = t.column(&c.column) {
                if found.is_some() {
                    return Err(ProxyError::Schema(format!("ambiguous column {c}")));
                }
                found = Some((visible.clone(), t, col));
            }
        }
        found.ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))
    }
}

/// One onion requirement extracted from a query (§3.2).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Req {
    Eq(String, String),
    Ord(String, String),
    Search(String, String),
    Join((String, String), (String, String)),
    OrdJoin((String, String), (String, String)),
    RefreshStale(String, String),
}

fn expr_has_columns(e: &Expr) -> bool {
    let mut has = false;
    e.walk(&mut |n| {
        if matches!(n, Expr::Column(_)) {
            has = true;
        }
    });
    has
}

impl Proxy {
    fn expr_has_sensitive(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        e: &Expr,
    ) -> Result<bool, ProxyError> {
        let mut err = None;
        let mut has = false;
        e.walk(&mut |n| {
            if let Expr::Column(c) = n {
                match resolver.resolve(schema, c) {
                    Ok((_, _, col)) => {
                        if col.sensitive {
                            has = true;
                        }
                    }
                    Err(e) => err = Some(e),
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(has),
        }
    }

    /// Adds the requirement for a column-vs-constant comparison, with the
    /// multi-principal and staleness checks.
    fn push_col_req(
        &self,
        col_t: &TableState,
        col: &ColumnState,
        class: OpClass,
        reqs: &mut Vec<Req>,
    ) -> Result<(), ProxyError> {
        if !col.sensitive {
            return Ok(());
        }
        if col.enc_for.is_some() && class != OpClass::None {
            return Err(ProxyError::NeedsPlaintext(format!(
                "column {}.{} is encrypted per-principal; server-side {class:?} is impossible \
                 (§6: no server computation across principals)",
                col_t.name, col.name
            )));
        }
        let t = col_t.name.to_lowercase();
        if col.stale && matches!(class, OpClass::Eq | OpClass::Ord | OpClass::Join) {
            reqs.push(Req::RefreshStale(t.clone(), col.name.clone()));
        }
        match class {
            OpClass::Eq => reqs.push(Req::Eq(t, col.name.clone())),
            OpClass::Ord => reqs.push(Req::Ord(t, col.name.clone())),
            OpClass::Search => {
                if !col.onions.search {
                    return Err(ProxyError::NeedsPlaintext(format!(
                        "column {}.{} has no Search onion",
                        col_t.name, col.name
                    )));
                }
                reqs.push(Req::Search(t, col.name.clone()));
            }
            OpClass::Add => {
                if !col.onions.add {
                    return Err(ProxyError::NeedsPlaintext(format!(
                        "column {}.{} has no Add onion (HOM is for integers)",
                        col_t.name, col.name
                    )));
                }
            }
            OpClass::Join | OpClass::None => {}
        }
        Ok(())
    }

    /// Collects onion requirements from a predicate (WHERE / ON).
    fn analyze_pred(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        e: &Expr,
        reqs: &mut Vec<Req>,
    ) -> Result<(), ProxyError> {
        match e {
            Expr::Binary {
                op: BinOp::And | BinOp::Or,
                left,
                right,
            } => {
                self.analyze_pred(schema, resolver, left, reqs)?;
                self.analyze_pred(schema, resolver, right, reqs)
            }
            Expr::Not(inner) => self.analyze_pred(schema, resolver, inner, reqs),
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let lcol = matches!(&**left, Expr::Column(_));
                let rcol = matches!(&**right, Expr::Column(_));
                match (lcol, rcol) {
                    (true, true) => {
                        let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) else {
                            unreachable!("matched columns");
                        };
                        let (_, ta, ca) = resolver.resolve(schema, a)?;
                        let (_, tb, cb) = resolver.resolve(schema, b)?;
                        match (ca.sensitive, cb.sensitive) {
                            (false, false) => Ok(()),
                            (true, true) => {
                                if ca.enc_for.is_some() || cb.enc_for.is_some() {
                                    return Err(ProxyError::NeedsPlaintext(
                                        "join on per-principal encrypted column".into(),
                                    ));
                                }
                                let pa = (ta.name.to_lowercase(), ca.name.clone());
                                let pb = (tb.name.to_lowercase(), cb.name.clone());
                                if *op == BinOp::Eq || *op == BinOp::NotEq {
                                    if !ca.has_jtag || !cb.has_jtag {
                                        return Err(ProxyError::PolicyViolation(format!(
                                            "join between {} and {} refused: the adjustable \
                                             JOIN layer was discarded (§3.5.2)",
                                            ca.name, cb.name
                                        )));
                                    }
                                    if ca.stale {
                                        reqs.push(Req::RefreshStale(pa.0.clone(), pa.1.clone()));
                                    }
                                    if cb.stale {
                                        reqs.push(Req::RefreshStale(pb.0.clone(), pb.1.clone()));
                                    }
                                    reqs.push(Req::Join(pa, pb));
                                } else {
                                    if ca.ope_group.is_none() || ca.ope_group != cb.ope_group {
                                        return Err(ProxyError::NeedsPlaintext(format!(
                                            "range join between {} and {} requires a \
                                             pre-declared OPE-JOIN group (§3.4)",
                                            ca.name, cb.name
                                        )));
                                    }
                                    reqs.push(Req::OrdJoin(pa, pb));
                                }
                                Ok(())
                            }
                            _ => Err(ProxyError::NeedsPlaintext(
                                "comparison between encrypted and plaintext columns".into(),
                            )),
                        }
                    }
                    (true, false) | (false, true) => {
                        let (cref, other) = if lcol {
                            (&**left, &**right)
                        } else {
                            (&**right, &**left)
                        };
                        let Expr::Column(c) = cref else {
                            unreachable!()
                        };
                        let (_, t, col) = resolver.resolve(schema, c)?;
                        if expr_has_columns(other) {
                            if self.expr_has_sensitive(schema, resolver, other)? || col.sensitive {
                                return Err(ProxyError::NeedsPlaintext(format!(
                                    "comparison of column against a column expression: {e}"
                                )));
                            }
                            return Ok(());
                        }
                        let class = if op.is_order() {
                            OpClass::Ord
                        } else {
                            OpClass::Eq
                        };
                        self.push_col_req(t, col, class, reqs)
                    }
                    (false, false) => {
                        if self.expr_has_sensitive(schema, resolver, e)? {
                            Err(ProxyError::NeedsPlaintext(format!(
                                "computation over encrypted column in predicate: {e} \
                                 (§6: computation and comparison cannot combine)"
                            )))
                        } else {
                            Ok(())
                        }
                    }
                }
            }
            Expr::Like { expr, pattern, .. } => {
                let Expr::Column(c) = &**expr else {
                    return Err(ProxyError::NeedsPlaintext("LIKE over expression".into()));
                };
                let (_, t, col) = resolver.resolve(schema, c)?;
                if !col.sensitive {
                    return Ok(());
                }
                if matches!(&**pattern, Expr::Param(_)) {
                    // Whether a pattern is an equality or a SEARCH
                    // depends on its wildcards, unknown until Bind —
                    // the statement takes the generic prepared path.
                    return Err(param_fallback());
                }
                let Expr::Literal(Literal::Str(pat)) = &**pattern else {
                    return Err(ProxyError::NeedsPlaintext(
                        "LIKE with a column pattern (the banned-list idiom, §8.2)".into(),
                    ));
                };
                if !pat.contains('%') && !pat.contains('_') {
                    return self.push_col_req(t, col, OpClass::Eq, reqs);
                }
                if like_pattern_word(pat).is_none() {
                    return Err(ProxyError::NeedsPlaintext(format!(
                        "LIKE pattern '{pat}' is not a full-word search (§3.1 SEARCH)"
                    )));
                }
                self.push_col_req(t, col, OpClass::Search, reqs)
            }
            Expr::InList { expr, list, .. } => {
                let Expr::Column(c) = &**expr else {
                    return Err(ProxyError::NeedsPlaintext("IN over expression".into()));
                };
                let (_, t, col) = resolver.resolve(schema, c)?;
                if list.iter().any(expr_has_columns) {
                    return Err(ProxyError::NeedsPlaintext("IN list with columns".into()));
                }
                self.push_col_req(t, col, OpClass::Eq, reqs)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                let Expr::Column(c) = &**expr else {
                    return Err(ProxyError::NeedsPlaintext("BETWEEN over expression".into()));
                };
                let (_, t, col) = resolver.resolve(schema, c)?;
                if expr_has_columns(low) || expr_has_columns(high) {
                    return Err(ProxyError::NeedsPlaintext(
                        "BETWEEN with column bounds".into(),
                    ));
                }
                self.push_col_req(t, col, OpClass::Ord, reqs)
            }
            Expr::IsNull { .. } => Ok(()), // NULLs are stored unencrypted (§3.3).
            Expr::Func { name, args, .. } => {
                // Aggregates are analysed by the projection/HAVING paths;
                // any other function over an encrypted column needs
                // plaintext (string/date manipulation, bitwise ops — §8.2).
                for a in args {
                    if self.expr_has_sensitive(schema, resolver, a)? {
                        return Err(ProxyError::NeedsPlaintext(format!(
                            "function {name} over encrypted column"
                        )));
                    }
                }
                Ok(())
            }
            Expr::Column(c) => {
                let (_, _, col) = resolver.resolve(schema, c)?;
                if col.sensitive {
                    Err(ProxyError::NeedsPlaintext(
                        "bare encrypted column as a predicate".into(),
                    ))
                } else {
                    Ok(())
                }
            }
            // A placeholder analyses like the constant it stands for.
            Expr::Literal(_) | Expr::Param(_) => Ok(()),
            Expr::Binary { .. } | Expr::Neg(_) => {
                if self.expr_has_sensitive(schema, resolver, e)? {
                    Err(ProxyError::NeedsPlaintext(format!(
                        "arithmetic over encrypted column: {e}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Collects requirements from a whole SELECT.
    fn collect_select_reqs(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        sel: &Select,
    ) -> Result<Vec<Req>, ProxyError> {
        let mut reqs = Vec::new();
        if let Some(w) = &sel.selection {
            self.analyze_pred(schema, resolver, w, &mut reqs)?;
        }
        for j in &sel.joins {
            self.analyze_pred(schema, resolver, &j.on, &mut reqs)?;
        }
        for g in &sel.group_by {
            match g {
                Expr::Column(c) => {
                    let (_, t, col) = resolver.resolve(schema, c)?;
                    self.push_col_req(t, col, OpClass::Eq, &mut reqs)?;
                }
                other => {
                    if self.expr_has_sensitive(schema, resolver, other)? {
                        return Err(ProxyError::NeedsPlaintext(
                            "GROUP BY over an encrypted expression".into(),
                        ));
                    }
                }
            }
        }
        if let Some(h) = &sel.having {
            self.analyze_having(schema, resolver, h, &mut reqs)?;
        }
        // Projections.
        for item in &sel.projections {
            match item {
                SelectItem::Wildcard => {}
                SelectItem::Expr { expr, .. } => {
                    self.analyze_projection(schema, resolver, expr, sel.distinct, &mut reqs)?;
                }
            }
        }
        if sel.distinct {
            // DISTINCT needs equality on every projected encrypted column.
            for item in &sel.projections {
                match item {
                    SelectItem::Wildcard => {
                        for (_, tname) in &resolver.scopes {
                            let t = schema.table(tname)?;
                            for col in t.columns.clone() {
                                self.push_col_req(t, &col, OpClass::Eq, &mut reqs)?;
                            }
                        }
                    }
                    SelectItem::Expr {
                        expr: Expr::Column(c),
                        ..
                    } => {
                        let (_, t, col) = resolver.resolve(schema, c)?;
                        self.push_col_req(t, col, OpClass::Eq, &mut reqs)?;
                    }
                    _ => {}
                }
            }
        }
        // ORDER BY (server-side path only).
        if !self.proxy_sorts(sel) {
            for ob in &sel.order_by {
                match &ob.expr {
                    Expr::Column(c) => {
                        let (_, t, col) = resolver.resolve(schema, c)?;
                        self.push_col_req(t, col, OpClass::Ord, &mut reqs)?;
                    }
                    Expr::Func { name, .. } if name == "COUNT" => {}
                    other => {
                        if self.expr_has_sensitive(schema, resolver, other)? {
                            return Err(ProxyError::NeedsPlaintext(
                                "ORDER BY over an encrypted expression".into(),
                            ));
                        }
                    }
                }
            }
        }
        Ok(reqs)
    }

    fn analyze_projection(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        e: &Expr,
        _distinct: bool,
        reqs: &mut Vec<Req>,
    ) -> Result<(), ProxyError> {
        match e {
            Expr::Column(_) | Expr::Literal(_) => Ok(()),
            Expr::Func {
                name,
                args,
                star,
                distinct,
            } => match name.as_str() {
                "COUNT" => {
                    if *star {
                        return Ok(());
                    }
                    let Some(Expr::Column(c)) = args.first() else {
                        return Err(ProxyError::NeedsPlaintext("COUNT over expression".into()));
                    };
                    let (_, t, col) = resolver.resolve(schema, c)?;
                    if *distinct {
                        self.push_col_req(t, col, OpClass::Eq, reqs)?;
                    }
                    Ok(())
                }
                "SUM" | "AVG" => {
                    let Some(Expr::Column(c)) = args.first() else {
                        return Err(ProxyError::NeedsPlaintext(format!(
                            "{name} over an expression (§6)"
                        )));
                    };
                    let (_, t, col) = resolver.resolve(schema, c)?;
                    self.push_col_req(t, col, OpClass::Add, reqs)
                }
                "MIN" | "MAX" => {
                    let Some(Expr::Column(c)) = args.first() else {
                        return Err(ProxyError::NeedsPlaintext(format!(
                            "{name} over an expression"
                        )));
                    };
                    let (_, t, col) = resolver.resolve(schema, c)?;
                    if col.sensitive && col.ty != ColumnType::Int {
                        return Err(ProxyError::NeedsPlaintext(format!(
                            "{name} over encrypted text"
                        )));
                    }
                    self.push_col_req(t, col, OpClass::Ord, reqs)
                }
                other => {
                    if args
                        .iter()
                        .map(|a| self.expr_has_sensitive(schema, resolver, a))
                        .collect::<Result<Vec<_>, _>>()?
                        .iter()
                        .any(|b| *b)
                    {
                        Err(ProxyError::NeedsPlaintext(format!(
                            "function {other} over encrypted column (§8.2 needs-plaintext)"
                        )))
                    } else {
                        Ok(())
                    }
                }
            },
            other => {
                if self.expr_has_sensitive(schema, resolver, other)? {
                    Err(ProxyError::NeedsPlaintext(format!(
                        "projected expression over encrypted column: {other}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn analyze_having(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        e: &Expr,
        reqs: &mut Vec<Req>,
    ) -> Result<(), ProxyError> {
        match e {
            Expr::Binary {
                op: BinOp::And | BinOp::Or,
                left,
                right,
            } => {
                self.analyze_having(schema, resolver, left, reqs)?;
                self.analyze_having(schema, resolver, right, reqs)
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let (func, other) = match (&**left, &**right) {
                    (f @ Expr::Func { .. }, o) => (f, o),
                    (o, f @ Expr::Func { .. }) => (f, o),
                    _ => {
                        return Err(ProxyError::NeedsPlaintext(
                            "HAVING supports aggregate comparisons only".into(),
                        ))
                    }
                };
                if expr_has_columns(other) {
                    return Err(ProxyError::NeedsPlaintext(
                        "HAVING with column bound".into(),
                    ));
                }
                let Expr::Func { name, .. } = func else {
                    unreachable!()
                };
                if name != "COUNT" {
                    return Err(ProxyError::NeedsPlaintext(format!(
                        "HAVING over {name}: comparing a HOM ciphertext is impossible; \
                         process in the proxy instead (§3.5.1)"
                    )));
                }
                self.analyze_projection(schema, resolver, func, false, reqs)
            }
            _ => Err(ProxyError::NeedsPlaintext(
                "unsupported HAVING clause".into(),
            )),
        }
    }

    fn proxy_sorts(&self, sel: &Select) -> bool {
        self.config.in_proxy_processing
            && !sel.order_by.is_empty()
            && sel.limit.is_none()
            && sel
                .order_by
                .iter()
                .all(|ob| matches!(ob.expr, Expr::Column(_)))
    }

    // ---- adjustments (§3.2, §3.4) ----

    /// Applies every adjustment the requirements demand: RND peeling via
    /// `DECRYPT_RND`, join-group merging via `JOIN_ADJ`, stale refresh.
    ///
    /// Each helper reports whether it actually mutated the schema; only
    /// real mutations bump the schema epoch. Re-checking an
    /// already-exposed layer (the steady state for every repeated query
    /// shape) must NOT invalidate cached plans, or the plan cache would
    /// never serve a hit.
    pub(crate) fn apply_adjustments(&self, reqs: &[Req]) -> Result<(), ProxyError> {
        if reqs.is_empty() {
            return Ok(());
        }
        let mut schema = self.schema.write();
        let mut search_flipped = false;
        let mut changed = false;
        for req in reqs {
            match req {
                Req::RefreshStale(t, c) => {
                    changed |= self.refresh_stale_locked(&mut schema, t, c)?
                }
                Req::Eq(t, c) => changed |= self.expose_det_locked(&mut schema, t, c)?,
                Req::Ord(t, c) => changed |= self.expose_ope_locked(&mut schema, t, c)?,
                Req::Search(t, c) => {
                    locked_col(&schema, t, c)?.check_floor(SecLevel::Search)?;
                    let col = locked_col_mut(&mut schema, t, c)?;
                    search_flipped |= !col.search_used;
                    col.search_used = true;
                }
                Req::OrdJoin(a, b) => {
                    changed |= self.expose_ope_locked(&mut schema, &a.0, &a.1)?;
                    changed |= self.expose_ope_locked(&mut schema, &b.0, &b.1)?;
                }
                Req::Join(a, b) => {
                    changed |= self.expose_det_locked(&mut schema, &a.0, &a.1)?;
                    changed |= self.expose_det_locked(&mut schema, &b.0, &b.1)?;
                    changed |= self.merge_join_groups_locked(&mut schema, a, b)?;
                }
            }
        }
        if changed {
            self.bump_epoch();
        }
        if search_flipped {
            // `search_used` affects only MinEnc accounting, but it must
            // survive a restart like every other schema bit.
            self.log_schema(&schema)?;
        }
        Ok(())
    }

    fn expose_det_locked(
        &self,
        schema: &mut EncSchema,
        t: &str,
        c: &str,
    ) -> Result<bool, ProxyError> {
        let (anon_t, col) = {
            let table = schema.table(t)?;
            let col = table
                .column(c)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))?;
            (table.anon.clone(), col.clone())
        };
        if col.eq_level == EqLevel::Det || !col.sensitive || !col.onions.eq {
            return Ok(false);
        }
        col.check_floor(SecLevel::Det)?;
        let keys = self.master_col_keys(&col, t);
        // UPDATE table SET c_eq = DECRYPT_RND(K, c_eq, c_iv) — §3.2.
        let sql_stmt = Stmt::Update(Update {
            table: anon_t,
            sets: vec![(
                col.anon_eq(),
                Expr::Func {
                    name: "DECRYPT_RND".into(),
                    args: vec![
                        Expr::Literal(Literal::Bytes(keys.rnd_eq_key.to_vec())),
                        Expr::col(col.anon_eq()),
                        Expr::col(col.anon_iv()),
                    ],
                    star: false,
                    distinct: false,
                },
            )],
            selection: None,
        });
        // Composite record: flip the level in the secret schema first so
        // the serialized meta rides the same WAL record as the ciphertext
        // UPDATE (the exposure and the schema bit land atomically), and
        // revert if the engine rejects it.
        schema
            .table_mut(t)?
            .column_mut(c)
            .expect("column exists")
            .eq_level = EqLevel::Det;
        let meta = self.meta_blob(schema);
        if let Err(e) = self.engine.execute_with_meta(&sql_stmt, meta.as_deref()) {
            schema
                .table_mut(t)?
                .column_mut(c)
                .expect("column exists")
                .eq_level = EqLevel::Rnd;
            return Err(e.into());
        }
        Ok(true)
    }

    fn expose_ope_locked(
        &self,
        schema: &mut EncSchema,
        t: &str,
        c: &str,
    ) -> Result<bool, ProxyError> {
        let (anon_t, col) = {
            let table = schema.table(t)?;
            let col = table
                .column(c)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))?;
            (table.anon.clone(), col.clone())
        };
        if col.ord_level == OrdLevel::Ope || !col.sensitive || !col.onions.ord {
            return Ok(false);
        }
        col.check_floor(SecLevel::Ope)?;
        let keys = self.master_col_keys(&col, t);
        let sql_stmt = Stmt::Update(Update {
            table: anon_t,
            sets: vec![(
                col.anon_ord(),
                Expr::Func {
                    name: "DECRYPT_RND".into(),
                    args: vec![
                        Expr::Literal(Literal::Bytes(keys.rnd_ord_key.to_vec())),
                        Expr::col(col.anon_ord()),
                        Expr::col(col.anon_iv()),
                    ],
                    star: false,
                    distinct: false,
                },
            )],
            selection: None,
        });
        schema
            .table_mut(t)?
            .column_mut(c)
            .expect("column exists")
            .ord_level = OrdLevel::Ope;
        let meta = self.meta_blob(schema);
        if let Err(e) = self.engine.execute_with_meta(&sql_stmt, meta.as_deref()) {
            schema
                .table_mut(t)?
                .column_mut(c)
                .expect("column exists")
                .ord_level = OrdLevel::Rnd;
            return Err(e.into());
        }
        Ok(true)
    }

    /// Merges the join transitivity groups of `a` and `b` (§3.4): all
    /// members are re-keyed to the lexicographically first column's key.
    fn merge_join_groups_locked(
        &self,
        schema: &mut EncSchema,
        a: &(String, String),
        b: &(String, String),
    ) -> Result<bool, ProxyError> {
        let owner_a = locked_col(schema, &a.0, &a.1)?.join_owner.clone();
        let owner_b = locked_col(schema, &b.0, &b.1)?.join_owner.clone();
        if owner_a == owner_b {
            return Ok(false);
        }
        let mut members = schema.join_group_members(&owner_a);
        members.extend(schema.join_group_members(&owner_b));
        let base = members
            .iter()
            .map(|(t, c)| (t.to_lowercase(), c.to_lowercase()))
            .min()
            .expect("groups are non-empty");
        let base_member = members
            .iter()
            .find(|(t, c)| (t.to_lowercase(), c.to_lowercase()) == base)
            .expect("base from members")
            .clone();
        let base_col = locked_col(schema, &base_member.0, &base_member.1)?.clone();
        let base_keys = self.master_col_keys(&base_col, &base_col.table.clone());
        for (t, c) in members {
            let col = locked_col(schema, &t, &c)?.clone();
            col.check_floor(SecLevel::Join)?;
            if col.join_owner == base_member {
                continue;
            }
            let owner_col = {
                let (ot, oc) = col.join_owner.clone();
                locked_col(schema, &ot, &oc)?.clone()
            };
            let owner_keys = self.master_col_keys(&owner_col, &owner_col.table.clone());
            let delta = JoinAdj::delta(&owner_keys.join, &base_keys.join);
            let anon_t = schema.table(&t)?.anon.clone();
            let stmt = Stmt::Update(Update {
                table: anon_t,
                sets: vec![(
                    col.anon_eq(),
                    Expr::Func {
                        name: "JOIN_ADJ".into(),
                        args: vec![
                            Expr::col(col.anon_eq()),
                            Expr::Literal(Literal::Bytes(delta.to_bytes().to_vec())),
                        ],
                        star: false,
                        distinct: false,
                    },
                )],
                selection: None,
            });
            // Per-member composite record: re-own in the schema, attach
            // the meta to the JOIN_ADJ UPDATE, revert on failure. A crash
            // mid-merge leaves the already-re-keyed members durable with
            // the matching owner bits.
            let prev_owner = locked_col_mut(schema, &t, &c)?.join_owner.clone();
            locked_col_mut(schema, &t, &c)?.join_owner = base_member.clone();
            let meta = self.meta_blob(schema);
            if let Err(e) = self.engine.execute_with_meta(&stmt, meta.as_deref()) {
                locked_col_mut(schema, &t, &c)?.join_owner = prev_owner;
                return Err(e.into());
            }
        }
        Ok(true)
    }

    /// Re-encrypts a stale column from its (authoritative) Add onion —
    /// the paper's SELECT-then-UPDATE strategy for incremented columns
    /// that are later compared (§3.3).
    fn refresh_stale_locked(
        &self,
        schema: &mut EncSchema,
        t: &str,
        c: &str,
    ) -> Result<bool, ProxyError> {
        let (anon_t, col) = {
            let table = schema.table(t)?;
            let col = table
                .column(c)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))?;
            (table.anon.clone(), col.clone())
        };
        if !col.stale {
            return Ok(false);
        }
        let rows = self
            .engine
            .execute_sql(&format!("SELECT rid, {} FROM {anon_t}", col.anon_add()))?
            .rows()
            .to_vec();
        let owner = col.join_owner.clone();
        let owner_col = locked_col(schema, &owner.0, &owner.1)?.clone();
        let owner_keys = self.master_col_keys(&owner_col, &owner.0);
        for row in rows {
            let rid = row[0]
                .as_int()
                .ok_or_else(|| ProxyError::Crypto("rid missing during stale refresh".into()))?;
            let v = decrypt_add(&self.paillier, &row[1])?;
            let cell = self.encrypt_cell_for(t, &col, &self.mk, &owner_keys, &v)?;
            let mut sets = vec![(
                col.anon_iv(),
                value_to_literal(cell.iv.unwrap_or(Value::Null)),
            )];
            if let Some(eq) = cell.eq {
                sets.push((col.anon_eq(), value_to_literal(eq)));
            }
            if let Some(ord) = cell.ord {
                sets.push((col.anon_ord(), value_to_literal(ord)));
            }
            let stmt = Stmt::Update(Update {
                table: anon_t.clone(),
                sets,
                selection: Some(Expr::binary(BinOp::Eq, Expr::col("rid"), Expr::int(rid))),
            });
            self.engine.execute(&stmt)?;
        }
        // The per-row re-encryptions above log meta-less records; the
        // stale bit clears only once all rows are rewritten. A crash
        // mid-refresh therefore recovers with `stale` still set and the
        // refresh simply re-runs (it is idempotent — the Add onion stays
        // authoritative throughout).
        locked_col_mut(schema, t, c)?.stale = false;
        self.log_schema(schema)?;
        Ok(true)
    }
}

impl Proxy {
    /// §3.5.1 "onion re-encryption": re-encrypts a column's exposed Eq/Ord
    /// onions back to RND after an infrequent low-layer query, reducing
    /// leakage to attacks that happen while the layer is exposed. The
    /// proxy reads every row, decrypts, and writes fresh RND ciphertexts.
    ///
    /// Returns the number of rows re-encrypted.
    pub fn seal_column(&self, table: &str, column: &str) -> Result<usize, ProxyError> {
        let mut schema = self.schema.write();
        let (anon_t, col) = {
            let t = schema.table(table)?;
            let col = t
                .column(column)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {column}")))?;
            (t.anon.clone(), col.clone())
        };
        if !col.sensitive || col.enc_for.is_some() {
            return Err(ProxyError::Schema(format!(
                "cannot re-seal {column}: not a single-principal encrypted column"
            )));
        }
        if col.eq_level == EqLevel::Rnd && col.ord_level == OrdLevel::Rnd {
            return Ok(0);
        }
        if col.stale {
            self.refresh_stale_locked(&mut schema, &table.to_lowercase(), column)?;
        }
        let keys = self.master_col_keys(&col, &col.table.clone());
        // The Eq onion is always decryptable (with the row IV when still
        // at RND), so read plaintexts back through it.
        let projections = ["rid".to_string(), col.anon_iv(), col.anon_eq()];
        let rows = self
            .engine
            .execute_sql(&format!("SELECT {} FROM {anon_t}", projections.join(", ")))?
            .rows()
            .to_vec();
        // Decrypt each row from whatever layer is exposed, then rebuild a
        // fresh cell at full RND depth.
        let owner_col = locked_col(&schema, &col.join_owner.0, &col.join_owner.1)?.clone();
        let owner_keys = self.col_keys(&owner_col.table, &owner_col.name, &self.mk, None);
        let mut sealed_col = col.clone();
        sealed_col.eq_level = EqLevel::Rnd;
        sealed_col.ord_level = OrdLevel::Rnd;
        let n = rows.len();
        // Precompute every row's fresh RND cell first — no engine write
        // happens until the whole batch is ready.
        let mut updates = Vec::with_capacity(n);
        for row in rows {
            let rid = row[0]
                .as_int()
                .ok_or_else(|| ProxyError::Crypto("rid missing during seal".into()))?;
            let v = decrypt_eq(
                &keys,
                col.eq_level,
                col.ty,
                &row[2],
                Some(&row[1]),
                col.has_jtag,
            )?;
            let cell = self.encrypt_cell_for(&col.table, &sealed_col, &self.mk, &owner_keys, &v)?;
            let mut sets = vec![(
                col.anon_iv(),
                value_to_literal(cell.iv.unwrap_or(Value::Null)),
            )];
            if let Some(x) = cell.eq {
                sets.push((col.anon_eq(), value_to_literal(x)));
            }
            if let Some(x) = cell.ord {
                sets.push((col.anon_ord(), value_to_literal(x)));
            }
            updates.push(Update {
                table: anon_t.clone(),
                sets,
                selection: Some(Expr::binary(BinOp::Eq, Expr::col("rid"), Expr::int(rid))),
            });
        }
        {
            let c = locked_col_mut(&mut schema, &table.to_lowercase(), column)?;
            c.eq_level = EqLevel::Rnd;
            c.ord_level = OrdLevel::Rnd;
        }
        // Crash atomicity: every re-encrypted cell AND the schema's
        // level flip travel in ONE composite WAL record, so recovery
        // lands either fully pre-seal (levels still exposed, old
        // ciphertexts) or fully sealed — never a torn mix of RND cells
        // under an exposed-level schema.
        let meta = self.meta_blob(&schema);
        if let Err(e) = self
            .engine
            .execute_dml_batch_with_meta(&updates, meta.as_deref())
        {
            let c = locked_col_mut(&mut schema, &table.to_lowercase(), column)?;
            c.eq_level = col.eq_level;
            c.ord_level = col.ord_level;
            return Err(e.into());
        }
        self.bump_epoch();
        Ok(n)
    }
}

pub(crate) fn locked_col<'s>(
    schema: &'s EncSchema,
    t: &str,
    c: &str,
) -> Result<&'s ColumnState, ProxyError> {
    schema
        .table(t)?
        .column(c)
        .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))
}

fn locked_col_mut<'s>(
    schema: &'s mut EncSchema,
    t: &str,
    c: &str,
) -> Result<&'s mut ColumnState, ProxyError> {
    schema
        .table_mut(t)?
        .column_mut(c)
        .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))
}

// ---- DDL ----

impl Proxy {
    pub(crate) fn create_table(&self, ct: &CreateTable) -> Result<QueryResult, ProxyError> {
        let mut schema = self.schema.write();
        // Validate principal types referenced by annotations before any
        // state (schema or engine) changes.
        {
            let mp = self.mp.read();
            for cd in &ct.columns {
                if let Some(ef) = &cd.enc_for {
                    if !mp.has_type(&ef.princ_type) {
                        return Err(ProxyError::Schema(format!(
                            "ENC FOR references unknown PRINCTYPE {}",
                            ef.princ_type
                        )));
                    }
                }
            }
        }
        let anon = schema.next_anon_table();
        let mut columns = Vec::with_capacity(ct.columns.len());
        let tlow = ct.name.to_lowercase();
        for (i, cd) in ct.columns.iter().enumerate() {
            let sensitive = match &self.config.policy {
                EncryptionPolicy::All => true,
                EncryptionPolicy::AnnotatedOnly => cd.enc_for.is_some(),
                EncryptionPolicy::Explicit(map) => {
                    cd.enc_for.is_some()
                        || map.get(&tlow).is_some_and(|cols| {
                            cols.iter().any(|c| c.eq_ignore_ascii_case(&cd.name))
                        })
                }
            };
            let mut onions = OnionSet::for_type(cd.ty);
            if cd.enc_for.is_some() {
                // Per-principal columns: no server-side computation across
                // principals (§6), so only the projection-serving Eq onion
                // and (for text) the per-principal Search onion remain.
                onions.ord = false;
                onions.add = false;
            }
            columns.push(ColumnState {
                name: cd.name.clone(),
                table: tlow.clone(),
                ty: cd.ty,
                anon: format!("c{i}"),
                sensitive,
                enc_for: cd.enc_for.clone(),
                onions,
                eq_level: EqLevel::Rnd,
                ord_level: OrdLevel::Rnd,
                join_owner: (tlow.clone(), cd.name.clone()),
                stale: false,
                min_level: None,
                ope_group: None,
                has_jtag: true,
                search_used: false,
            });
        }
        // Server-side DDL: hidden rid + onion columns.
        let mut server_cols = vec![ColumnDef {
            name: "rid".into(),
            ty: ColumnType::Int,
            enc_for: None,
        }];
        for col in &columns {
            if !col.sensitive {
                server_cols.push(ColumnDef {
                    name: col.anon.clone(),
                    ty: col.ty,
                    enc_for: None,
                });
                continue;
            }
            let mut push = |name: String| {
                server_cols.push(ColumnDef {
                    name,
                    ty: ColumnType::Text,
                    enc_for: None,
                })
            };
            push(col.anon_iv());
            if col.onions.eq {
                push(col.anon_eq());
            }
            if col.onions.ord {
                push(col.anon_ord());
            }
            if col.onions.add {
                push(col.anon_add());
            }
            if col.onions.search {
                push(col.anon_srch());
            }
        }
        // Composite record: register the secret schema entry first, then
        // run the anonymized CREATE TABLE + rid-index as ONE batched WAL
        // record carrying the updated meta — the encrypted schema entry,
        // the server table, and its rid index stand or fall together.
        schema.insert(TableState {
            name: ct.name.clone(),
            anon: anon.clone(),
            columns,
            speaks_for: ct.speaks_for.clone(),
            next_rid: std::sync::Arc::new(std::sync::atomic::AtomicI64::new(1)),
        })?;
        let meta = self.meta_blob(&schema);
        let batch = [
            Stmt::CreateTable(CreateTable {
                name: anon.clone(),
                columns: server_cols,
                speaks_for: Vec::new(),
            }),
            Stmt::CreateIndex {
                table: anon,
                column: "rid".into(),
            },
        ];
        if let Err(e) = self.engine.execute_batch_with_meta(&batch, meta.as_deref()) {
            schema.remove(&ct.name);
            return Err(e.into());
        }
        self.bump_epoch();
        Ok(QueryResult::Ok)
    }

    pub(crate) fn create_index(
        &self,
        table: &str,
        column: &str,
    ) -> Result<QueryResult, ProxyError> {
        let (anon_t, col) = {
            let schema = self.schema.read();
            let t = schema.table(table)?;
            let col = t
                .column(column)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {column}")))?;
            (t.anon.clone(), col.clone())
        };
        if !col.sensitive {
            self.engine.execute(&Stmt::CreateIndex {
                table: anon_t,
                column: col.anon.clone(),
            })?;
            return Ok(QueryResult::Ok);
        }
        // §3.3: indexes go on the DET/JOIN and OPE onion columns; RND,
        // HOM and SEARCH are not indexable.
        if col.onions.eq {
            self.engine.execute(&Stmt::CreateIndex {
                table: anon_t.clone(),
                column: col.anon_eq(),
            })?;
        }
        if col.onions.ord {
            self.engine.execute(&Stmt::CreateIndex {
                table: anon_t,
                column: col.anon_ord(),
            })?;
        }
        Ok(QueryResult::Ok)
    }
}

// ---- SELECT rewriting ----

/// How to post-process one engine output column.
#[derive(Clone, Debug)]
pub(crate) enum Slot {
    /// Copy through (plaintext columns, COUNT results, IV/key columns).
    Raw,
    /// Decrypt the Eq onion.
    Eq {
        table: String,
        col: String,
        level: EqLevel,
        iv: Option<usize>,
        enc_for: Option<(String, usize)>,
    },
    /// Decrypt the Add onion (HOM).
    Add {
        #[allow(dead_code)]
        table: String,
        #[allow(dead_code)]
        col: String,
    },
    /// Decrypt the Ord onion (OPE; used for MIN/MAX results).
    Ord { table: String, col: String },
    /// HOM sum at this position; divide by COUNT at `count`.
    AvgPair {
        table: String,
        col: String,
        count: usize,
    },
}

/// The decryption plan for a rewritten SELECT.
#[derive(Clone, Debug)]
pub(crate) struct SelectPlan {
    pub slots: Vec<Slot>,
    pub visible: usize,
    pub names: Vec<String>,
    pub proxy_sort: Vec<(usize, bool)>,
}

/// How one `$n` occurrence must be encrypted at Bind time.
#[derive(Clone, Debug)]
pub(crate) enum ParamSlot {
    /// Plaintext position (non-sensitive column, plain expression).
    Plain,
    /// Equality comparison against this column's Eq onion (DET/JOIN).
    Eq { table: String, col: String },
    /// Order comparison against this column's Ord onion (OPE).
    Ord { table: String, col: String },
}

/// One `$n` occurrence inside a rewritten SELECT: the user-visible
/// 1-based parameter number plus the encryption the hole demands. The
/// rewritten AST stores `Expr::Param(occurrence-index)` (0-based), so the
/// same `$n` used twice gets two independently encrypted ciphertexts.
#[derive(Clone, Debug)]
pub(crate) struct ParamOcc {
    pub n: u32,
    pub slot: ParamSlot,
}

/// A fully rewritten SELECT, reusable across executions: the encrypted
/// statement (with parameter holes), its decryption plan, the hole
/// descriptors, and the schema epoch it was built against.
#[derive(Clone, Debug)]
pub(crate) struct CachedSelect {
    pub stmt: Select,
    pub plan: SelectPlan,
    pub occ: Vec<ParamOcc>,
    pub epoch: u64,
}

/// Outcome of running a cached plan against the live schema.
pub(crate) enum RunOutcome {
    Done(QueryResult),
    /// The schema epoch moved since the plan was built; re-plan.
    Stale,
}

struct SelectRw<'a> {
    proxy: &'a Proxy,
    schema: &'a EncSchema,
    resolver: &'a Resolver,
    /// Qualify rewritten column refs with the visible alias (SELECT); DML
    /// statements execute against the bare anonymised table and must not.
    qualify: bool,
    /// Whether `$n` placeholders may become bind-time holes. DML rewrites
    /// and the simple-query path refuse them instead (the generic
    /// prepared path substitutes plaintext before rewriting).
    allow_params: bool,
    /// Parameter occurrences recorded while rewriting (interior mutability
    /// because predicate rewriting takes `&self`).
    params: RefCell<Vec<ParamOcc>>,
    vis_items: Vec<SelectItem>,
    vis_slots: Vec<Slot>,
    vis_cols: Vec<Option<(String, String)>>,
    names: Vec<String>,
    hid_items: Vec<SelectItem>,
    hid_slots: Vec<Slot>,
}

impl<'a> SelectRw<'a> {
    fn new(
        proxy: &'a Proxy,
        schema: &'a EncSchema,
        resolver: &'a Resolver,
        qualify: bool,
        allow_params: bool,
    ) -> Self {
        SelectRw {
            proxy,
            schema,
            resolver,
            qualify,
            allow_params,
            params: RefCell::new(Vec::new()),
            vis_items: Vec::new(),
            vis_slots: Vec::new(),
            vis_cols: Vec::new(),
            names: Vec::new(),
            hid_items: Vec::new(),
            hid_slots: Vec::new(),
        }
    }

    /// Records a `$n` occurrence and returns the hole to splice into the
    /// rewritten AST (`Expr::Param` carrying the 0-based occurrence id).
    fn param_hole(&self, n: u32, slot: ParamSlot) -> Result<Expr, ProxyError> {
        if !self.allow_params {
            return Err(param_fallback());
        }
        let mut params = self.params.borrow_mut();
        let occ = params.len() as u32;
        params.push(ParamOcc { n, slot });
        Ok(Expr::Param(occ))
    }

    fn push_hidden(&mut self, item: SelectItem, slot: Slot) -> usize {
        self.hid_items.push(item);
        self.hid_slots.push(slot);
        self.hid_items.len() - 1
    }

    fn qcol(&self, visible: &str, name: String) -> Expr {
        Expr::Column(ColumnRef {
            table: self.qualify.then(|| visible.to_string()),
            column: name,
        })
    }

    /// Builds the engine projection + slot for one plaintext column.
    /// Hidden helpers (IV, principal key column) are appended as needed;
    /// their indices are *hidden-relative* and fixed up at finalise time.
    fn project_column(
        &mut self,
        visible: &str,
        t: &TableState,
        col: &ColumnState,
    ) -> Result<(SelectItem, Slot), ProxyError> {
        if !col.sensitive {
            return Ok((
                SelectItem::Expr {
                    expr: self.qcol(visible, col.anon.clone()),
                    alias: None,
                },
                Slot::Raw,
            ));
        }
        if col.stale {
            // Serve from the authoritative Add onion (§3.3).
            return Ok((
                SelectItem::Expr {
                    expr: self.qcol(visible, col.anon_add()),
                    alias: None,
                },
                Slot::Add {
                    table: t.name.to_lowercase(),
                    col: col.name.clone(),
                },
            ));
        }
        let iv = if col.eq_level == EqLevel::Rnd {
            Some(self.push_hidden(
                SelectItem::Expr {
                    expr: self.qcol(visible, col.anon_iv()),
                    alias: None,
                },
                Slot::Raw,
            ))
        } else {
            None
        };
        let enc_for = match &col.enc_for {
            None => None,
            Some(ef) => {
                let keycol = t.column(&ef.key_column).ok_or_else(|| {
                    ProxyError::Schema(format!("ENC FOR key column {} missing", ef.key_column))
                })?;
                if keycol.sensitive {
                    return Err(ProxyError::PolicyViolation(format!(
                        "ENC FOR key column {} must be plaintext in this implementation",
                        ef.key_column
                    )));
                }
                let idx = self.push_hidden(
                    SelectItem::Expr {
                        expr: self.qcol(visible, keycol.anon.clone()),
                        alias: None,
                    },
                    Slot::Raw,
                );
                Some((ef.princ_type.to_lowercase(), idx))
            }
        };
        Ok((
            SelectItem::Expr {
                expr: self.qcol(visible, col.anon_eq()),
                alias: None,
            },
            Slot::Eq {
                table: t.name.to_lowercase(),
                col: col.name.clone(),
                level: col.eq_level,
                iv,
                enc_for,
            },
        ))
    }

    /// Rewrites all column references in a plaintext-only expression.
    fn map_plain_expr(&self, e: &Expr) -> Result<Expr, ProxyError> {
        Ok(match e {
            Expr::Column(c) => {
                let (visible, _, col) = self.resolver.resolve(self.schema, c)?;
                if col.sensitive {
                    return Err(ProxyError::NeedsPlaintext(format!(
                        "expression over encrypted column {c}"
                    )));
                }
                self.qcol(&visible, col.anon.clone())
            }
            Expr::Literal(_) => e.clone(),
            Expr::Param(n) => self.param_hole(*n, ParamSlot::Plain)?,
            Expr::Binary { op, left, right } => {
                Expr::binary(*op, self.map_plain_expr(left)?, self.map_plain_expr(right)?)
            }
            Expr::Not(inner) => Expr::Not(Box::new(self.map_plain_expr(inner)?)),
            Expr::Neg(inner) => Expr::Neg(Box::new(self.map_plain_expr(inner)?)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.map_plain_expr(expr)?),
                pattern: Box::new(self.map_plain_expr(pattern)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.map_plain_expr(expr)?),
                list: list
                    .iter()
                    .map(|x| self.map_plain_expr(x))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.map_plain_expr(expr)?),
                low: Box::new(self.map_plain_expr(low)?),
                high: Box::new(self.map_plain_expr(high)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.map_plain_expr(expr)?),
                negated: *negated,
            },
            Expr::Func {
                name,
                args,
                star,
                distinct,
            } => Expr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|x| self.map_plain_expr(x))
                    .collect::<Result<_, _>>()?,
                star: *star,
                distinct: *distinct,
            },
        })
    }

    /// Rewrites a predicate into its encrypted form (§3.3).
    fn rw_pred(&self, e: &Expr) -> Result<Expr, ProxyError> {
        match e {
            Expr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
                Ok(Expr::binary(*op, self.rw_pred(left)?, self.rw_pred(right)?))
            }
            Expr::Not(inner) => Ok(Expr::Not(Box::new(self.rw_pred(inner)?))),
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let lcol = matches!(&**left, Expr::Column(_));
                let rcol = matches!(&**right, Expr::Column(_));
                match (lcol, rcol) {
                    (true, true) => {
                        let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) else {
                            unreachable!()
                        };
                        let (va, _ta, ca) = self.resolver.resolve(self.schema, a)?;
                        let (vb, _tb, cb) = self.resolver.resolve(self.schema, b)?;
                        if !ca.sensitive && !cb.sensitive {
                            return Ok(Expr::binary(
                                *op,
                                self.qcol(&va, ca.anon.clone()),
                                self.qcol(&vb, cb.anon.clone()),
                            ));
                        }
                        if *op == BinOp::Eq || *op == BinOp::NotEq {
                            // Equi-join on the JOIN-ADJ tags (§3.4).
                            let jt = |v: &str, c: &ColumnState| Expr::Func {
                                name: "JOINTAG".into(),
                                args: vec![self.qcol(v, c.anon_eq())],
                                star: false,
                                distinct: false,
                            };
                            Ok(Expr::binary(*op, jt(&va, ca), jt(&vb, cb)))
                        } else {
                            // Range join within a declared OPE group.
                            Ok(Expr::binary(
                                *op,
                                self.qcol(&va, ca.anon_ord()),
                                self.qcol(&vb, cb.anon_ord()),
                            ))
                        }
                    }
                    (true, false) | (false, true) => {
                        let (cref, other, op) = if lcol {
                            (&**left, &**right, *op)
                        } else {
                            (&**right, &**left, flip_cmp(*op))
                        };
                        let Expr::Column(c) = cref else {
                            unreachable!()
                        };
                        let (visible, _t, col) = self.resolver.resolve(self.schema, c)?;
                        // A bare `$n` on the constant side becomes a typed
                        // bind-time hole; anything else (including `$n`
                        // buried in arithmetic) folds now or falls back.
                        if let Expr::Param(n) = other {
                            let (target, slot) = if !col.sensitive {
                                (self.qcol(&visible, col.anon.clone()), ParamSlot::Plain)
                            } else if op.is_order() {
                                (
                                    self.qcol(&visible, col.anon_ord()),
                                    ParamSlot::Ord {
                                        table: col.table.clone(),
                                        col: col.name.clone(),
                                    },
                                )
                            } else {
                                (
                                    self.qcol(&visible, col.anon_eq()),
                                    ParamSlot::Eq {
                                        table: col.table.clone(),
                                        col: col.name.clone(),
                                    },
                                )
                            };
                            return Ok(Expr::binary(op, target, self.param_hole(*n, slot)?));
                        }
                        if !col.sensitive {
                            return Ok(Expr::binary(
                                op,
                                self.qcol(&visible, col.anon.clone()),
                                value_to_literal(const_fold(other)?),
                            ));
                        }
                        let v = const_fold(other)?;
                        if op.is_order() {
                            let keys = self.col_keys_of(col);
                            let enc = self.proxy.ope_encrypt_cached(&keys, &v)?;
                            Ok(Expr::binary(
                                op,
                                self.qcol(&visible, col.anon_ord()),
                                value_to_literal(enc),
                            ))
                        } else {
                            let enc = self.encrypt_eq_const(col, &v)?;
                            Ok(Expr::binary(
                                op,
                                self.qcol(&visible, col.anon_eq()),
                                value_to_literal(enc),
                            ))
                        }
                    }
                    (false, false) => self.map_plain_expr(e),
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let Expr::Column(c) = &**expr else {
                    return self.map_plain_expr(e);
                };
                let (visible, _t, col) = self.resolver.resolve(self.schema, c)?;
                if !col.sensitive {
                    return self.map_plain_expr(e);
                }
                let Expr::Literal(Literal::Str(pat)) = &**pattern else {
                    return Err(ProxyError::NeedsPlaintext(
                        "LIKE with column pattern".into(),
                    ));
                };
                if !pat.contains('%') && !pat.contains('_') {
                    // Exact-match LIKE is an equality check.
                    let enc = self.encrypt_eq_const(col, &Value::Str(pat.clone()))?;
                    let cmp = Expr::binary(
                        BinOp::Eq,
                        self.qcol(&visible, col.anon_eq()),
                        value_to_literal(enc),
                    );
                    return Ok(if *negated {
                        Expr::Not(Box::new(cmp))
                    } else {
                        cmp
                    });
                }
                let word = like_pattern_word(pat).ok_or_else(|| {
                    ProxyError::NeedsPlaintext(format!("unsupported LIKE pattern '{pat}'"))
                })?;
                let keys = self.col_keys_of(col);
                let token = colcrypt::search_token_bytes(&keys, &word);
                let call = Expr::Func {
                    name: "SEARCH_MATCH".into(),
                    args: vec![
                        self.qcol(&visible, col.anon_srch()),
                        Expr::Literal(Literal::Bytes(token)),
                    ],
                    star: false,
                    distinct: false,
                };
                Ok(if *negated {
                    Expr::Not(Box::new(call))
                } else {
                    call
                })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let Expr::Column(c) = &**expr else {
                    return self.map_plain_expr(e);
                };
                let (visible, _t, col) = self.resolver.resolve(self.schema, c)?;
                if !col.sensitive {
                    return self.map_plain_expr(e);
                }
                let enc_list = list
                    .iter()
                    .map(|x| {
                        if let Expr::Param(n) = x {
                            return self.param_hole(
                                *n,
                                ParamSlot::Eq {
                                    table: col.table.clone(),
                                    col: col.name.clone(),
                                },
                            );
                        }
                        let v = const_fold(x)?;
                        Ok(value_to_literal(self.encrypt_eq_const(col, &v)?))
                    })
                    .collect::<Result<Vec<_>, ProxyError>>()?;
                Ok(Expr::InList {
                    expr: Box::new(self.qcol(&visible, col.anon_eq())),
                    list: enc_list,
                    negated: *negated,
                })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let Expr::Column(c) = &**expr else {
                    return self.map_plain_expr(e);
                };
                let (visible, _t, col) = self.resolver.resolve(self.schema, c)?;
                if !col.sensitive {
                    return self.map_plain_expr(e);
                }
                let bound = |e: &Expr| -> Result<Expr, ProxyError> {
                    if let Expr::Param(n) = e {
                        return self.param_hole(
                            *n,
                            ParamSlot::Ord {
                                table: col.table.clone(),
                                col: col.name.clone(),
                            },
                        );
                    }
                    let keys = self.col_keys_of(col);
                    let enc = self.proxy.ope_encrypt_cached(&keys, &const_fold(e)?)?;
                    Ok(value_to_literal(enc))
                };
                let lo = bound(low)?;
                let hi = bound(high)?;
                Ok(Expr::Between {
                    expr: Box::new(self.qcol(&visible, col.anon_ord())),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: *negated,
                })
            }
            Expr::IsNull { expr, negated } => {
                let Expr::Column(c) = &**expr else {
                    return self.map_plain_expr(e);
                };
                let (visible, _t, col) = self.resolver.resolve(self.schema, c)?;
                let target = if col.sensitive {
                    self.qcol(&visible, col.anon_eq())
                } else {
                    self.qcol(&visible, col.anon.clone())
                };
                Ok(Expr::IsNull {
                    expr: Box::new(target),
                    negated: *negated,
                })
            }
            other => self.map_plain_expr(other),
        }
    }

    fn col_keys_of(&self, col: &ColumnState) -> Arc<ColumnKeys> {
        // A column's own layer keys always derive from its own table/name
        // path, regardless of any JOIN-ADJ re-keying.
        self.proxy.col_keys(
            &col.table,
            &col.name,
            &self.proxy.mk,
            col.ope_group.as_deref(),
        )
    }

    /// Encrypts an equality constant with the column's current effective
    /// JOIN-ADJ key (which may belong to another column after re-keying).
    /// Results are cached per (column, join owner, value) — the §3.5.2
    /// "caching ... encryptions of frequently used constants", which also
    /// skips the elliptic-curve JOIN-ADJ tag on repeats.
    fn encrypt_eq_const(&self, col: &ColumnState, v: &Value) -> Result<Value, ProxyError> {
        self.proxy.encrypt_eq_const_in(self.schema, col, v)
    }
}

impl Proxy {
    /// Equality-constant encryption against a given schema snapshot; the
    /// shared body behind both the rewrite-time and Bind-time paths.
    pub(crate) fn encrypt_eq_const_in(
        &self,
        schema: &EncSchema,
        col: &ColumnState,
        v: &Value,
    ) -> Result<Value, ProxyError> {
        let memo_key = (
            col.table.clone(),
            col.name.to_lowercase(),
            col.join_owner.0.clone(),
            col.join_owner.1.to_lowercase(),
            v.clone(),
        );
        if self.config.precompute {
            if let Some(hit) = self.eq_memo.get(&memo_key) {
                return Ok(hit);
            }
        }
        let own_keys = self.col_keys(&col.table, &col.name, &self.mk, None);
        let owner_col = locked_col(schema, &col.join_owner.0, &col.join_owner.1)?;
        let owner_keys = self.col_keys(&owner_col.table, &owner_col.name, &self.mk, None);
        let out = encrypt_eq_constant(
            &own_keys,
            &self.joinadj,
            &owner_keys.join,
            v,
            col.ty,
            col.has_jtag,
        )?;
        if self.config.precompute {
            self.eq_memo.insert(memo_key, out.clone());
        }
        Ok(out)
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

impl Proxy {
    pub(crate) fn select(&self, sel: &Select) -> Result<QueryResult, ProxyError> {
        if sel.from.is_empty() {
            return Ok(self.engine.execute(&Stmt::Select(sel.clone()))?);
        }
        let cs = self.plan_select(sel, false)?;
        match self.run_select_plan(&cs, &[], false)? {
            RunOutcome::Done(r) => Ok(r),
            RunOutcome::Stale => unreachable!("epoch unchecked on the simple path"),
        }
    }

    /// Steps 1–3 of the paper's pipeline (§3.2): analyse, adjust onions,
    /// rewrite. The result is reusable — `run_select_plan` performs the
    /// per-execution work (bind, execute, decrypt).
    pub(crate) fn plan_select(
        &self,
        sel: &Select,
        allow_params: bool,
    ) -> Result<CachedSelect, ProxyError> {
        let reqs = {
            let schema = self.schema.read();
            let resolver = Resolver::from_select(&schema, sel)?;
            self.collect_select_reqs(&schema, &resolver, sel)?
        };
        self.apply_adjustments(&reqs)?;
        // Capture the epoch under the same read guard the rewrite uses:
        // writers mutate (and bump) under the write lock, so a plan tagged
        // with epoch E provably saw the schema as of E.
        let schema = self.schema.read();
        let resolver = Resolver::from_select(&schema, sel)?;
        let epoch = self.schema_epoch();
        let (stmt, plan, occ) = self.rewrite_select(&schema, &resolver, sel, allow_params)?;
        Ok(CachedSelect {
            stmt,
            plan,
            occ,
            epoch,
        })
    }

    /// Binds parameters (encrypting each occurrence per its slot),
    /// executes the cached rewritten SELECT, and decrypts the results.
    /// With `check_epoch`, reports `Stale` instead of executing when the
    /// schema moved since the plan was built — the epoch is re-read under
    /// the same read guard the bind encryptions use, so a plan never
    /// binds against a schema newer than the one it was rewritten for.
    pub(crate) fn run_select_plan(
        &self,
        cs: &CachedSelect,
        params: &[Value],
        check_epoch: bool,
    ) -> Result<RunOutcome, ProxyError> {
        let stmt = {
            let schema = self.schema.read();
            if check_epoch && self.schema_epoch() != cs.epoch {
                return Ok(RunOutcome::Stale);
            }
            if cs.occ.is_empty() {
                cs.stmt.clone()
            } else {
                let mut bound = Vec::with_capacity(cs.occ.len());
                for occ in &cs.occ {
                    let v = params
                        .get((occ.n as usize).wrapping_sub(1))
                        .ok_or_else(|| {
                            ProxyError::Schema(format!("parameter ${} not bound", occ.n))
                        })?;
                    let lit = match &occ.slot {
                        ParamSlot::Plain => value_to_literal(v.clone()),
                        ParamSlot::Eq { table, col } => {
                            let col = locked_col(&schema, table, col)?;
                            value_to_literal(self.encrypt_eq_const_in(&schema, col, v)?)
                        }
                        ParamSlot::Ord { table, col } => {
                            let col = locked_col(&schema, table, col)?;
                            let keys = self.col_keys(
                                &col.table,
                                &col.name,
                                &self.mk,
                                col.ope_group.as_deref(),
                            );
                            value_to_literal(self.ope_encrypt_cached(&keys, v)?)
                        }
                    };
                    bound.push(lit);
                }
                super::prepared::subst_select(&cs.stmt, &|occ| bound[occ as usize].clone())
            }
        };
        let result = self.engine.execute(&Stmt::Select(stmt))?;
        self.decrypt_results(&cs.plan, result).map(RunOutcome::Done)
    }

    fn rewrite_select(
        &self,
        schema: &EncSchema,
        resolver: &Resolver,
        sel: &Select,
        allow_params: bool,
    ) -> Result<(Select, SelectPlan, Vec<ParamOcc>), ProxyError> {
        let mut rw = SelectRw::new(self, schema, resolver, true, allow_params);

        // Projections.
        for item in &sel.projections {
            match item {
                SelectItem::Wildcard => {
                    for (visible, tname) in resolver.scopes.clone() {
                        let t = schema.table(&tname)?;
                        for col in t.columns.clone() {
                            let (it, slot) = rw.project_column(&visible, t, &col)?;
                            rw.vis_items.push(it);
                            rw.vis_slots.push(slot);
                            rw.vis_cols.push(Some((tname.clone(), col.name.clone())));
                            rw.names.push(col.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.column.clone(),
                        other => other.to_string(),
                    });
                    let (it, slot, colref) = self.rewrite_projection(&mut rw, expr)?;
                    rw.vis_items.push(it);
                    rw.vis_slots.push(slot);
                    rw.vis_cols.push(colref);
                    rw.names.push(name);
                }
            }
        }

        // WHERE and JOIN ... ON.
        let selection = sel.selection.as_ref().map(|w| rw.rw_pred(w)).transpose()?;
        let mut joins = Vec::with_capacity(sel.joins.len());
        for j in &sel.joins {
            let t = schema.table(&j.table.name)?;
            let visible = j
                .table
                .alias
                .clone()
                .unwrap_or_else(|| j.table.name.clone());
            joins.push(cryptdb_sqlparser::Join {
                table: TableRef {
                    name: t.anon.clone(),
                    alias: Some(visible),
                },
                on: rw.rw_pred(&j.on)?,
            });
        }
        let from = sel
            .from
            .iter()
            .map(|tref| {
                let t = schema.table(&tref.name)?;
                Ok(TableRef {
                    name: t.anon.clone(),
                    alias: Some(tref.alias.clone().unwrap_or_else(|| tref.name.clone())),
                })
            })
            .collect::<Result<Vec<_>, ProxyError>>()?;

        // GROUP BY.
        let mut group_by = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            match g {
                Expr::Column(c) => {
                    let (visible, _t, col) = resolver.resolve(schema, c)?;
                    group_by.push(if col.sensitive {
                        rw.qcol(&visible, col.anon_eq())
                    } else {
                        rw.qcol(&visible, col.anon.clone())
                    });
                }
                other => group_by.push(rw.map_plain_expr(other)?),
            }
        }

        // HAVING (COUNT comparisons only; checked during analysis).
        let having = sel
            .having
            .as_ref()
            .map(|h| self.rewrite_having(&rw, h))
            .transpose()?;

        // ORDER BY.
        let proxy_sorting = self.proxy_sorts(sel);
        let mut order_by = Vec::new();
        let mut proxy_sort = Vec::new();
        if proxy_sorting {
            for ob in &sel.order_by {
                let Expr::Column(c) = &ob.expr else {
                    unreachable!("proxy_sorts requires plain columns")
                };
                // Prefer an existing visible projection by alias/name.
                let by_name = c.table.is_none().then(|| {
                    rw.names
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(&c.column))
                });
                if let Some(Some(idx)) = by_name {
                    proxy_sort.push((idx, ob.asc));
                    continue;
                }
                let (visible, t, col) = resolver.resolve(schema, c)?;
                let t_low = t.name.to_lowercase();
                if let Some(idx) = rw
                    .vis_cols
                    .iter()
                    .position(|vc| vc.as_ref() == Some(&(t_low.clone(), col.name.clone())))
                {
                    proxy_sort.push((idx, ob.asc));
                } else {
                    let col = col.clone();
                    let (it, slot) = rw.project_column(&visible, t, &col)?;
                    let hid = rw.push_hidden(it, slot);
                    // Mark with a sentinel; fixed up after nvis is known.
                    proxy_sort.push((usize::MAX - hid, ob.asc));
                }
            }
        } else {
            for ob in &sel.order_by {
                let key = match &ob.expr {
                    Expr::Column(c) => {
                        let (visible, _t, col) = resolver.resolve(schema, c)?;
                        if col.sensitive {
                            rw.qcol(&visible, col.anon_ord())
                        } else {
                            rw.qcol(&visible, col.anon.clone())
                        }
                    }
                    f @ Expr::Func { .. } => {
                        let (it, _slot, _) = self.rewrite_projection(&mut rw, f)?;
                        match it {
                            SelectItem::Expr { expr, .. } => expr,
                            SelectItem::Wildcard => unreachable!(),
                        }
                    }
                    other => rw.map_plain_expr(other)?,
                };
                order_by.push(OrderBy {
                    expr: key,
                    asc: ob.asc,
                });
            }
        }

        let nvis = rw.vis_items.len();
        let fix = |s: Slot| -> Slot {
            match s {
                Slot::Eq {
                    table,
                    col,
                    level,
                    iv,
                    enc_for,
                } => Slot::Eq {
                    table,
                    col,
                    level,
                    iv: iv.map(|h| nvis + h),
                    enc_for: enc_for.map(|(p, h)| (p, nvis + h)),
                },
                Slot::AvgPair { table, col, count } => Slot::AvgPair {
                    table,
                    col,
                    count: nvis + count,
                },
                other => other,
            }
        };
        let slots: Vec<Slot> = rw
            .vis_slots
            .into_iter()
            .chain(rw.hid_slots)
            .map(fix)
            .collect();
        let proxy_sort = proxy_sort
            .into_iter()
            .map(|(idx, asc)| {
                if idx > usize::MAX / 2 {
                    (nvis + (usize::MAX - idx), asc)
                } else {
                    (idx, asc)
                }
            })
            .collect();

        let projections: Vec<SelectItem> = rw.vis_items.into_iter().chain(rw.hid_items).collect();
        let rewritten = Select {
            distinct: sel.distinct,
            projections,
            from,
            joins,
            selection,
            group_by,
            having,
            order_by,
            limit: sel.limit,
        };
        let plan = SelectPlan {
            slots,
            visible: nvis,
            names: rw.names,
            proxy_sort,
        };
        Ok((rewritten, plan, rw.params.into_inner()))
    }

    /// Rewrites one projected expression; returns the engine item, its
    /// slot, and (for plain column refs) the column identity for reuse.
    #[allow(clippy::type_complexity)]
    fn rewrite_projection(
        &self,
        rw: &mut SelectRw<'_>,
        expr: &Expr,
    ) -> Result<(SelectItem, Slot, Option<(String, String)>), ProxyError> {
        match expr {
            Expr::Column(c) => {
                let (visible, t, col) = rw.resolver.resolve(rw.schema, c)?;
                let t_low = t.name.to_lowercase();
                let col = col.clone();
                let (it, slot) = rw.project_column(&visible, t, &col)?;
                Ok((it, slot, Some((t_low, col.name.clone()))))
            }
            Expr::Func {
                name,
                args,
                star,
                distinct,
            } => {
                if *star && name == "COUNT" {
                    return Ok((
                        SelectItem::Expr {
                            expr: expr.clone(),
                            alias: None,
                        },
                        Slot::Raw,
                        None,
                    ));
                }
                let Some(Expr::Column(c)) = args.first() else {
                    // Constant-argument function; pass through.
                    return Ok((
                        SelectItem::Expr {
                            expr: rw.map_plain_expr(expr)?,
                            alias: None,
                        },
                        Slot::Raw,
                        None,
                    ));
                };
                let (visible, t, col) = rw.resolver.resolve(rw.schema, c)?;
                if !col.sensitive {
                    return Ok((
                        SelectItem::Expr {
                            expr: rw.map_plain_expr(expr)?,
                            alias: None,
                        },
                        Slot::Raw,
                        None,
                    ));
                }
                let t_low = t.name.to_lowercase();
                match name.as_str() {
                    "COUNT" => Ok((
                        SelectItem::Expr {
                            expr: Expr::Func {
                                name: "COUNT".into(),
                                args: vec![rw.qcol(&visible, col.anon_eq())],
                                star: false,
                                distinct: *distinct,
                            },
                            alias: None,
                        },
                        Slot::Raw,
                        None,
                    )),
                    "SUM" => Ok((
                        SelectItem::Expr {
                            expr: Expr::Func {
                                name: "HOM_SUM".into(),
                                args: vec![rw.qcol(&visible, col.anon_add())],
                                star: false,
                                distinct: false,
                            },
                            alias: None,
                        },
                        Slot::Add {
                            table: t_low,
                            col: col.name.clone(),
                        },
                        None,
                    )),
                    "AVG" => {
                        let count = rw.push_hidden(
                            SelectItem::Expr {
                                expr: Expr::Func {
                                    name: "COUNT".into(),
                                    args: vec![rw.qcol(&visible, col.anon_add())],
                                    star: false,
                                    distinct: false,
                                },
                                alias: None,
                            },
                            Slot::Raw,
                        );
                        Ok((
                            SelectItem::Expr {
                                expr: Expr::Func {
                                    name: "HOM_SUM".into(),
                                    args: vec![rw.qcol(&visible, col.anon_add())],
                                    star: false,
                                    distinct: false,
                                },
                                alias: None,
                            },
                            Slot::AvgPair {
                                table: t_low,
                                col: col.name.clone(),
                                count,
                            },
                            None,
                        ))
                    }
                    "MIN" | "MAX" => Ok((
                        SelectItem::Expr {
                            expr: Expr::Func {
                                name: name.clone(),
                                args: vec![rw.qcol(&visible, col.anon_ord())],
                                star: false,
                                distinct: false,
                            },
                            alias: None,
                        },
                        Slot::Ord {
                            table: t_low,
                            col: col.name.clone(),
                        },
                        None,
                    )),
                    other => Err(ProxyError::NeedsPlaintext(format!(
                        "function {other} over encrypted column"
                    ))),
                }
            }
            other => Ok((
                SelectItem::Expr {
                    expr: rw.map_plain_expr(other)?,
                    alias: None,
                },
                Slot::Raw,
                None,
            )),
        }
    }

    fn rewrite_having(&self, rw: &SelectRw<'_>, e: &Expr) -> Result<Expr, ProxyError> {
        match e {
            Expr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
                Ok(Expr::binary(
                    *op,
                    self.rewrite_having(rw, left)?,
                    self.rewrite_having(rw, right)?,
                ))
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let rewrite_side = |side: &Expr| -> Result<Expr, ProxyError> {
                    match side {
                        Expr::Func {
                            name,
                            args,
                            star,
                            distinct,
                        } if name == "COUNT" => {
                            if *star {
                                return Ok(side.clone());
                            }
                            let Some(Expr::Column(c)) = args.first() else {
                                return Err(ProxyError::NeedsPlaintext(
                                    "HAVING COUNT over expression".into(),
                                ));
                            };
                            let (visible, _t, col) = rw.resolver.resolve(rw.schema, c)?;
                            let arg = if col.sensitive {
                                rw.qcol(&visible, col.anon_eq())
                            } else {
                                rw.qcol(&visible, col.anon.clone())
                            };
                            Ok(Expr::Func {
                                name: "COUNT".into(),
                                args: vec![arg],
                                star: false,
                                distinct: *distinct,
                            })
                        }
                        other => Ok(value_to_literal(const_fold(other)?)),
                    }
                };
                Ok(Expr::binary(*op, rewrite_side(left)?, rewrite_side(right)?))
            }
            _ => Err(ProxyError::NeedsPlaintext("unsupported HAVING".into())),
        }
    }

    /// Decrypts an engine result per the plan (§3 step 4).
    ///
    /// HOM (SUM/AVG) cells are the expensive part — a full-width CRT
    /// exponentiation each — so they are gathered into one batch and
    /// *pipelined*: the batch starts on the persistent runtime pool
    /// immediately, the calling thread decrypts the cheap onions
    /// (RND/DET/OPE) for every row while the pool works, and the two
    /// streams join only when the HOM slots are filled in.
    fn decrypt_results(
        &self,
        plan: &SelectPlan,
        result: QueryResult,
    ) -> Result<QueryResult, ProxyError> {
        let QueryResult::Rows { rows, .. } = result else {
            return Ok(result);
        };
        let schema = self.schema.read();
        // Gather every Add-onion (HOM) cell of the whole result set —
        // SUM/AVG aggregates and stale-column projections — and kick off
        // one pooled batch decryption. Plans without aggregate slots
        // (the common case) skip the row scan entirely.
        let hom_slots: Vec<usize> = plan
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Add { .. } | Slot::AvgPair { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut hom_refs = Vec::new();
        let mut pending_hom = None;
        if !hom_slots.is_empty() {
            let mut cts = Vec::new();
            for (ri, row) in rows.iter().enumerate() {
                for &i in &hom_slots {
                    if row[i].is_null() {
                        continue;
                    }
                    let bytes = row[i]
                        .as_bytes()
                        .ok_or_else(|| ProxyError::Crypto("Add onion cell is not bytes".into()))?;
                    hom_refs.push((ri, i));
                    cts.push(self.paillier.public().ciphertext_from_bytes(bytes));
                }
            }
            if !cts.is_empty() {
                pending_hom = Some(self.paillier.decrypt_i64_batch_pending(&self.runtime, cts));
            }
        }
        // Row post-processing overlaps with the HOM batch: first pass
        // decrypts everything except HOM cells and per-principal
        // columns, second pass handles per-principal columns (which
        // need the already-decrypted key column).
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows.iter() {
            let mut dec: Vec<Value> = vec![Value::Null; plan.slots.len()];
            for (i, slot) in plan.slots.iter().enumerate() {
                match slot {
                    Slot::Raw => dec[i] = row[i].clone(),
                    Slot::Eq {
                        table,
                        col,
                        level,
                        iv,
                        enc_for: None,
                    } => {
                        let cs = locked_col(&schema, table, col)?;
                        let keys = self.master_col_keys(cs, table);
                        let iv_val = iv.map(|idx| row[idx].clone());
                        dec[i] = decrypt_eq(
                            &keys,
                            *level,
                            cs.ty,
                            &row[i],
                            iv_val.as_ref(),
                            cs.has_jtag,
                        )?;
                    }
                    Slot::Eq { .. } => {} // Per-principal pass below.
                    // HOM slots are filled after the pipelined batch
                    // lands.
                    Slot::Add { .. } | Slot::AvgPair { .. } => {}
                    Slot::Ord { table, col } => {
                        let cs = locked_col(&schema, table, col)?;
                        let keys = self.master_col_keys(cs, table);
                        dec[i] = decrypt_ord(&keys, OrdLevel::Ope, &row[i], None)?;
                    }
                }
            }
            // Per-principal columns (need the key column).
            for (i, slot) in plan.slots.iter().enumerate() {
                let Slot::Eq {
                    table,
                    col,
                    level,
                    iv,
                    enc_for: Some((ptype, key_idx)),
                } = slot
                else {
                    continue;
                };
                let cs = locked_col(&schema, table, col)?;
                let id = value_id_string(&dec[*key_idx]);
                let principal: Principal = (ptype.clone(), id);
                let root = self.mp.read().resolve_key(&self.engine, &principal);
                match root {
                    None => dec[i] = row[i].clone(), // Undecryptable: ciphertext.
                    Some(root) => {
                        let keys = self.col_keys(table, col, &root, None);
                        let iv_val = iv.map(|idx| row[idx].clone());
                        dec[i] = match decrypt_eq(
                            &keys,
                            *level,
                            cs.ty,
                            &row[i],
                            iv_val.as_ref(),
                            cs.has_jtag,
                        ) {
                            Ok(v) => v,
                            Err(_) => row[i].clone(),
                        };
                    }
                }
            }
            out_rows.push(dec);
        }
        // The onion passes above are done with the schema; release the
        // read guard BEFORE joining the HOM batch. wait_help below may
        // inline-run another session's queued statement on this thread,
        // and a statement may take `schema.write()` (DDL, onion
        // adjustment; INSERT itself is read-only here since rid
        // allocation went atomic) — with the guard still held that
        // same-thread read→write upgrade would deadlock (the locks are
        // non-reentrant). Masked on a single-worker pool, where the
        // pending batch is pre-resolved; live on multicore.
        drop(schema);
        // Join the pipelined HOM batch and fill the aggregate slots.
        if !hom_slots.is_empty() {
            let mut hom_cells: HashMap<(usize, usize), Option<i64>> = HashMap::new();
            if let Some(pending) = pending_hom {
                // Help-while-waiting: this thread may itself BE a pool
                // worker (the serving layer dispatches client sessions
                // as pool jobs), in which case a plain wait could leave
                // every worker blocked on chunks queued behind other
                // sessions — help_one keeps the queue draining.
                for (key, v) in hom_refs.into_iter().zip(pending.wait_help(&self.runtime)) {
                    hom_cells.insert(key, v);
                }
            }
            let hom_value = |ri: usize, i: usize| -> Result<Value, ProxyError> {
                match hom_cells.get(&(ri, i)) {
                    None => Ok(Value::Null),
                    Some(Some(v)) => Ok(Value::Int(*v)),
                    Some(None) => Err(ProxyError::Crypto("HOM plaintext out of i64 range".into())),
                }
            };
            for (ri, dec) in out_rows.iter_mut().enumerate() {
                for (i, slot) in plan.slots.iter().enumerate() {
                    match slot {
                        Slot::Add { .. } => dec[i] = hom_value(ri, i)?,
                        Slot::AvgPair { count, .. } => {
                            let sum = hom_value(ri, i)?;
                            let n = rows[ri][*count].as_int().unwrap_or(0);
                            dec[i] = match (sum, n) {
                                (Value::Int(s), n) if n > 0 => Value::Int(s / n),
                                _ => Value::Null,
                            };
                        }
                        _ => {}
                    }
                }
            }
        }
        // In-proxy ORDER BY (§3.5.1).
        if !plan.proxy_sort.is_empty() {
            out_rows.sort_by(|a, b| {
                for (idx, asc) in &plan.proxy_sort {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    if ord != std::cmp::Ordering::Equal {
                        return if *asc { ord } else { ord.reverse() };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        for row in out_rows.iter_mut() {
            row.truncate(plan.visible);
        }
        Ok(QueryResult::Rows {
            columns: plan.names.clone(),
            rows: out_rows,
        })
    }
}

/// Principal ids are strings; integers stringify.
pub(crate) fn value_id_string(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

mod dml;
