//! Prepared-statement execution: parse → analyze → rewrite once, then
//! bind typed parameters and execute many times.
//!
//! [`Proxy::prepare`] runs the full rewrite pipeline with `$n`
//! placeholders left as typed holes and caches the result in a bounded
//! sharded plan cache keyed by the normalized statement text. Each
//! [`Proxy::execute_prepared`] then only encrypts the bound values
//! (DET/OPE per the hole's slot, riding the same §3.5.2 caches as the
//! simple path), splices them into the cached rewritten AST, executes,
//! and decrypts.
//!
//! Plans capture the schema epoch they were rewritten under. Any schema
//! mutation (DDL, onion adjustment, join re-keying, stale flips) bumps
//! the epoch, and a plan whose epoch no longer matches is transparently
//! re-planned before execution — a cached plan never outlives its
//! schema. Statements whose placeholders sit in positions the rewriter
//! cannot type (e.g. a LIKE pattern, whose onion depends on the value's
//! wildcards) fall back to a *generic* plan: the parse is still cached,
//! and each execution substitutes plaintext values into the AST and runs
//! the ordinary statement pipeline.

use super::rewrite::{locked_col, CachedSelect, ParamSlot, RunOutcome};
use super::*;

/// A bound parameter value. `NULL` binds as [`Value::Null`].
pub type Param = Value;

/// A handle to a prepared statement: the normalized SQL plus an
/// immutable snapshot of its plan. Cheap to clone; executions always
/// re-validate the plan's schema epoch, so holding a handle across DDL
/// is safe.
#[derive(Clone)]
pub struct PreparedStatement {
    pub(crate) sql: String,
    pub(crate) entry: Arc<PlanEntry>,
}

impl std::fmt::Debug for PreparedStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedStatement")
            .field("sql", &self.sql)
            .field("params", &self.entry.nparams)
            .finish()
    }
}

impl PreparedStatement {
    /// The normalized statement text this plan was built from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of parameters (`max $n` over the statement).
    pub fn param_count(&self) -> usize {
        self.entry.nparams
    }

    /// Per-parameter column types where the rewriter could infer one
    /// (the target column of a typed hole); `None` for plaintext slots
    /// and generic plans.
    pub fn param_kinds(&self) -> &[Option<ColumnType>] {
        &self.entry.kinds
    }

    /// Result column names, when the plan knows them ahead of execution
    /// (typed SELECT plans). Generic plans report `None`.
    pub fn columns(&self) -> Option<&[String]> {
        self.entry.columns.as_deref()
    }
}

/// One cached plan: what `prepare` builds and `execute_prepared` runs.
pub(crate) struct PlanEntry {
    /// Schema epoch the plan was built under.
    pub(crate) epoch: u64,
    pub(crate) nparams: usize,
    pub(crate) kinds: Vec<Option<ColumnType>>,
    pub(crate) columns: Option<Vec<String>>,
    pub(crate) plan: PlanKind,
}

pub(crate) enum PlanKind {
    /// Fully rewritten SELECT with typed bind-time holes.
    Select(CachedSelect),
    /// Anything else (DML, DDL, passthrough, or a SELECT the rewriter
    /// could not hole-ify): substitute plaintext values into the parsed
    /// AST and run the ordinary statement pipeline.
    Generic(Stmt),
}

/// Plan-cache counters (see [`Proxy::plan_cache_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanCacheStats {
    /// Plans currently cached.
    pub cached: u64,
    /// `prepare` calls served from the cache at a matching epoch.
    pub hits: u64,
    /// `prepare` calls that built a plan not in the cache.
    pub misses: u64,
    /// Plans discarded because the schema epoch moved (at `prepare` or
    /// mid-execution).
    pub invalidated: u64,
}

impl Proxy {
    /// Prepares `sql` (exactly one statement): parse, analyze, rewrite,
    /// and resolve keys once, leaving `$n` placeholders as typed holes.
    /// Results are cached by normalized text, so repeated `prepare` of
    /// one statement shape pays the pipeline once per schema epoch.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, ProxyError> {
        let key = sql.trim().to_string();
        if let Some(entry) = self.plan_cache.get(&key) {
            if entry.epoch == self.schema_epoch() {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PreparedStatement { sql: key, entry });
            }
            self.plans_invalidated.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
        }
        let entry = Arc::new(self.build_plan(&key)?);
        self.plan_cache.insert(key.clone(), entry.clone());
        Ok(PreparedStatement { sql: key, entry })
    }

    /// Executes a prepared statement with `params` bound positionally
    /// (`params[0]` is `$1`). Only the bound values are encrypted; the
    /// rewritten statement comes from the plan. A plan found stale
    /// against the live schema epoch is re-planned transparently.
    pub fn execute_prepared(
        &self,
        ps: &PreparedStatement,
        params: &[Param],
    ) -> Result<QueryResult, ProxyError> {
        let mut entry = ps.entry.clone();
        if entry.epoch != self.schema_epoch() {
            // The handle may predate a re-plan another session already
            // paid for; prefer the cache's fresher entry.
            if let Some(e) = self.plan_cache.get(&ps.sql) {
                entry = e;
            }
        }
        if params.len() != entry.nparams {
            return Err(ProxyError::Schema(format!(
                "statement takes {} parameter(s), {} bound",
                entry.nparams,
                params.len()
            )));
        }
        // Bounded re-plan loop: a DDL storm can keep invalidating the
        // plan, but each retry re-reads the schema, so a quiescent
        // moment completes. After the retries, fall back to plaintext
        // substitution through the full pipeline (always correct — it
        // re-plans inline).
        for _ in 0..3 {
            match &entry.plan {
                PlanKind::Generic(stmt) => {
                    return self.execute_stmt(&subst_stmt_user(stmt, params));
                }
                PlanKind::Select(cs) => match self.run_select_plan(cs, params, true)? {
                    RunOutcome::Done(r) => return Ok(r),
                    RunOutcome::Stale => {
                        self.plans_invalidated.fetch_add(1, Ordering::Relaxed);
                        entry = Arc::new(self.build_plan(&ps.sql)?);
                        self.plan_cache.insert(ps.sql.clone(), entry.clone());
                    }
                },
            }
        }
        let stmt = single_stmt(&ps.sql)?;
        self.execute_stmt(&subst_stmt_user(&stmt, params))
    }

    /// Plan-cache observability: size plus hit/miss/invalidation
    /// counters since the proxy was built.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            cached: self.plan_cache.len() as u64,
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            invalidated: self.plans_invalidated.load(Ordering::Relaxed),
        }
    }

    fn build_plan(&self, sql: &str) -> Result<PlanEntry, ProxyError> {
        let stmt = single_stmt(sql)?;
        let nparams = count_params(&stmt)?;
        // Only non-degenerate SELECTs in CryptDB mode get a typed plan;
        // everything else re-runs the statement pipeline per execution.
        let typed = match (&stmt, self.config.mode) {
            (Stmt::Select(sel), ProxyMode::CryptDb) if !sel.from.is_empty() => {
                match self.plan_select(sel, true) {
                    Ok(cs) => Some(cs),
                    Err(e) if is_param_fallback(&e) => None,
                    Err(e) => return Err(e),
                }
            }
            _ => None,
        };
        let mut kinds = vec![None; nparams];
        match typed {
            Some(cs) => {
                {
                    let schema = self.schema.read();
                    for occ in &cs.occ {
                        let (t, c) = match &occ.slot {
                            ParamSlot::Plain => continue,
                            ParamSlot::Eq { table, col } | ParamSlot::Ord { table, col } => {
                                (table, col)
                            }
                        };
                        let slot = &mut kinds[(occ.n - 1) as usize];
                        if slot.is_none() {
                            *slot = Some(locked_col(&schema, t, c)?.ty);
                        }
                    }
                }
                Ok(PlanEntry {
                    epoch: cs.epoch,
                    nparams,
                    kinds,
                    columns: Some(cs.plan.names.clone()),
                    plan: PlanKind::Select(cs),
                })
            }
            None => Ok(PlanEntry {
                epoch: self.schema_epoch(),
                nparams,
                kinds,
                columns: None,
                plan: PlanKind::Generic(stmt),
            }),
        }
    }
}

fn single_stmt(sql: &str) -> Result<Stmt, ProxyError> {
    let mut stmts = parse(sql)?;
    if stmts.len() != 1 {
        return Err(ProxyError::Schema(format!(
            "prepared statements take exactly one statement, got {}",
            stmts.len()
        )));
    }
    Ok(stmts.remove(0))
}

/// Validates placeholder numbering (1-based, no `$0`) and returns the
/// parameter count (`max $n`; unreferenced intermediate numbers still
/// demand a binding, matching the wire protocol).
fn count_params(stmt: &Stmt) -> Result<usize, ProxyError> {
    let mut max = 0u32;
    let mut zero = false;
    for_each_expr(stmt, &mut |e| {
        e.walk(&mut |n| {
            if let Expr::Param(p) = n {
                if *p == 0 {
                    zero = true;
                }
                max = max.max(*p);
            }
        });
    });
    if zero {
        return Err(ProxyError::Schema(
            "parameter placeholders are numbered from $1".into(),
        ));
    }
    Ok(max as usize)
}

/// Visits every top-level expression position of a statement.
fn for_each_expr<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Select(sel) => for_each_select_expr(sel, f),
        Stmt::Insert(ins) => {
            for row in &ins.rows {
                for e in row {
                    f(e);
                }
            }
        }
        Stmt::Update(upd) => {
            for (_, e) in &upd.sets {
                f(e);
            }
            if let Some(w) = &upd.selection {
                f(w);
            }
        }
        Stmt::Delete(del) => {
            if let Some(w) = &del.selection {
                f(w);
            }
        }
        Stmt::CreateTable(_)
        | Stmt::CreateIndex { .. }
        | Stmt::DropTable { .. }
        | Stmt::Begin
        | Stmt::Commit
        | Stmt::Rollback
        | Stmt::PrincType { .. } => {}
    }
}

fn for_each_select_expr<'a>(sel: &'a Select, f: &mut impl FnMut(&'a Expr)) {
    for item in &sel.projections {
        if let SelectItem::Expr { expr, .. } = item {
            f(expr);
        }
    }
    for j in &sel.joins {
        f(&j.on);
    }
    if let Some(w) = &sel.selection {
        f(w);
    }
    for g in &sel.group_by {
        f(g);
    }
    if let Some(h) = &sel.having {
        f(h);
    }
    for ob in &sel.order_by {
        f(&ob.expr);
    }
}

/// Substitutes user-numbered (`$1`-based) placeholders with plaintext
/// literal values. Bounds are validated by the caller (`count_params` +
/// the arity check), so indexing cannot miss.
fn subst_stmt_user(stmt: &Stmt, params: &[Value]) -> Stmt {
    let f = |n: u32| value_to_literal(params[(n - 1) as usize].clone());
    match stmt {
        Stmt::Select(sel) => Stmt::Select(subst_select(sel, &f)),
        Stmt::Insert(ins) => Stmt::Insert(Insert {
            table: ins.table.clone(),
            columns: ins.columns.clone(),
            rows: ins
                .rows
                .iter()
                .map(|row| row.iter().map(|e| subst_expr(e, &f)).collect())
                .collect(),
        }),
        Stmt::Update(upd) => Stmt::Update(Update {
            table: upd.table.clone(),
            sets: upd
                .sets
                .iter()
                .map(|(c, e)| (c.clone(), subst_expr(e, &f)))
                .collect(),
            selection: upd.selection.as_ref().map(|w| subst_expr(w, &f)),
        }),
        Stmt::Delete(del) => Stmt::Delete(Delete {
            table: del.table.clone(),
            selection: del.selection.as_ref().map(|w| subst_expr(w, &f)),
        }),
        other => other.clone(),
    }
}

/// Substitutes every `Expr::Param(i)` in a SELECT via `f` (used with
/// 0-based occurrence ids on the cached-plan path and 1-based user
/// numbers on the generic path).
pub(crate) fn subst_select(sel: &Select, f: &impl Fn(u32) -> Expr) -> Select {
    Select {
        distinct: sel.distinct,
        projections: sel
            .projections
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: subst_expr(expr, f),
                    alias: alias.clone(),
                },
            })
            .collect(),
        from: sel.from.clone(),
        joins: sel
            .joins
            .iter()
            .map(|j| cryptdb_sqlparser::Join {
                table: j.table.clone(),
                on: subst_expr(&j.on, f),
            })
            .collect(),
        selection: sel.selection.as_ref().map(|w| subst_expr(w, f)),
        group_by: sel.group_by.iter().map(|g| subst_expr(g, f)).collect(),
        having: sel.having.as_ref().map(|h| subst_expr(h, f)),
        order_by: sel
            .order_by
            .iter()
            .map(|ob| OrderBy {
                expr: subst_expr(&ob.expr, f),
                asc: ob.asc,
            })
            .collect(),
        limit: sel.limit,
    }
}

fn subst_expr(e: &Expr, f: &impl Fn(u32) -> Expr) -> Expr {
    match e {
        Expr::Param(n) => f(*n),
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Binary { op, left, right } => {
            Expr::binary(*op, subst_expr(left, f), subst_expr(right, f))
        }
        Expr::Not(inner) => Expr::Not(Box::new(subst_expr(inner, f))),
        Expr::Neg(inner) => Expr::Neg(Box::new(subst_expr(inner, f))),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(subst_expr(expr, f)),
            pattern: Box::new(subst_expr(pattern, f)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(subst_expr(expr, f)),
            list: list.iter().map(|x| subst_expr(x, f)).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(subst_expr(expr, f)),
            low: Box::new(subst_expr(low, f)),
            high: Box::new(subst_expr(high, f)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(subst_expr(expr, f)),
            negated: *negated,
        },
        Expr::Func {
            name,
            args,
            star,
            distinct,
        } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|x| subst_expr(x, f)).collect(),
            star: *star,
            distinct: *distinct,
        },
    }
}
