//! The onion model (Fig. 2) and security-level lattice (§8.3).

use std::fmt;

/// Current layer of the Eq onion.
///
/// `Rnd` wraps `JOIN(v) = JOIN-ADJ(v) ‖ DET(v)` in probabilistic CBC;
/// peeling to `Det` exposes the deterministic blob for equality checks,
/// `GROUP BY`, and (after JOIN-ADJ re-keying) equi-joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EqLevel {
    Rnd,
    Det,
}

/// Current layer of the Ord onion (`Rnd` over `OPE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OrdLevel {
    Rnd,
    Ope,
}

/// The flat security lattice used for MinEnc reporting and minimum-layer
/// policy floors. Strongest first: the paper ranks
/// RND = HOM > SEARCH > DET = JOIN > OPE (§8.3), with PLAIN below
/// everything (columns CryptDB cannot encrypt at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecLevel {
    Rnd,
    Hom,
    Search,
    Det,
    Join,
    Ope,
    Plain,
}

impl SecLevel {
    /// Numeric strength: higher is stronger.
    pub fn strength(self) -> u8 {
        match self {
            SecLevel::Rnd | SecLevel::Hom => 4,
            SecLevel::Search => 3,
            SecLevel::Det | SecLevel::Join => 2,
            SecLevel::Ope => 1,
            SecLevel::Plain => 0,
        }
    }

    /// True if this level belongs to the paper's HIGH class (§8.3):
    /// "RND and HOM ... highly secure encryption schemes leaking virtually
    /// nothing about the data". (DET with no repeats also qualifies; that
    /// refinement is applied by the report generator, which can see the
    /// data distribution.)
    pub fn is_high(self) -> bool {
        matches!(self, SecLevel::Rnd | SecLevel::Hom)
    }
}

impl fmt::Display for SecLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecLevel::Rnd => "RND",
            SecLevel::Hom => "HOM",
            SecLevel::Search => "SEARCH",
            SecLevel::Det => "DET",
            SecLevel::Join => "JOIN",
            SecLevel::Ope => "OPE",
            SecLevel::Plain => "PLAIN",
        };
        write!(f, "{s}")
    }
}

/// The classes of computation a query can demand from a column (§2.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Equality selection, `GROUP BY`, `COUNT(DISTINCT)`, `IN`.
    Eq,
    /// Equi-join with another column.
    Join,
    /// Order comparison, `ORDER BY` with `LIMIT`, `MIN`/`MAX`, ranges.
    Ord,
    /// Additive aggregate (`SUM`, `AVG`) or increment update.
    Add,
    /// Full-word keyword search (`LIKE '%word%'`).
    Search,
    /// Projection / insertion only — nothing revealed beyond size.
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_ranking_matches_paper() {
        assert!(SecLevel::Rnd.strength() > SecLevel::Search.strength());
        assert!(SecLevel::Search.strength() > SecLevel::Det.strength());
        assert_eq!(SecLevel::Det.strength(), SecLevel::Join.strength());
        assert!(SecLevel::Det.strength() > SecLevel::Ope.strength());
        assert!(SecLevel::Ope.strength() > SecLevel::Plain.strength());
        assert_eq!(SecLevel::Rnd.strength(), SecLevel::Hom.strength());
    }

    #[test]
    fn high_class() {
        assert!(SecLevel::Rnd.is_high());
        assert!(SecLevel::Hom.is_high());
        assert!(!SecLevel::Det.is_high());
        assert!(!SecLevel::Ope.is_high());
    }
}
