//! Per-column encryption across all onions (Fig. 2 / Fig. 3).
//!
//! Each sensitive column's keys are derived from a *root key* — the master
//! key in single-principal mode, or a principal's key under `ENC FOR` —
//! via the paper's Equation (1). A plaintext cell encrypts to up to five
//! server-side cells: the shared random IV plus one ciphertext per onion.

use crate::error::ProxyError;
use crate::onion::{EqLevel, OrdLevel};
use cryptdb_crypto::aes::Aes;
use cryptdb_crypto::blowfish::Blowfish;
use cryptdb_crypto::modes::{cbc_decrypt, cbc_encrypt, cmc_decrypt, cmc_encrypt};
use cryptdb_crypto::prf::{derive_key, Key};
use cryptdb_ecgroup::{JoinAdj, JoinKey};
use cryptdb_engine::Value;
use cryptdb_ope::{Ope, OpeCached, OpeError};
use cryptdb_paillier::{PaillierPrivate, PaillierPublic};
use cryptdb_search::{SearchCiphertext, SearchKey, SearchToken};
use cryptdb_sqlparser::ColumnType;
use parking_lot::{Mutex, RwLock};
use rand::RngCore;
use std::collections::HashMap;

/// Number of stripe locks sharding a column's OPE walker cache: enough
/// that concurrent sessions missing on different plaintexts rarely
/// collide on a stripe, small enough that the per-stripe result/node
/// budgets (total ÷ stripes) stay useful.
const OPE_WALKER_STRIPES: usize = 8;

/// JOIN-ADJ tag length inside the Eq onion blob.
pub const JTAG_LEN: usize = 32;
/// IV length (AES block).
pub const IV_LEN: usize = 16;

/// Which onions a column carries (§3.2: "some onions or onion layers may
/// be omitted, depending on column types or schema annotations").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnionSet {
    pub eq: bool,
    pub ord: bool,
    pub add: bool,
    pub search: bool,
}

impl OnionSet {
    /// Default onions for a column type: integers get Eq/Ord/Add, text
    /// gets Eq/Ord/Search (Fig. 2).
    pub fn for_type(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => OnionSet {
                eq: true,
                ord: true,
                add: true,
                search: false,
            },
            ColumnType::Text => OnionSet {
                eq: true,
                ord: true,
                add: false,
                search: true,
            },
        }
    }
}

/// The derived key material for one column under one root key.
pub struct ColumnKeys {
    /// RND layer of the Eq onion.
    rnd_eq: Aes,
    /// RND layer of the Ord onion.
    rnd_ord: Aes,
    /// DET for 64-bit integers (the paper uses Blowfish's 64-bit block).
    det_int: Blowfish,
    /// DET for text (AES-CMC).
    det_txt: Aes,
    /// OPE (64-bit domain, 124-bit range), the cacheless instance: used
    /// for decryption (lock-free) and for encryption when §3.5.2
    /// pre-computation is disabled (the Fig. 12 Proxy⋆ baseline must not
    /// silently benefit from the cache).
    ope: Ope,
    /// Finished plaintext→ciphertext OPE results (§3.5.2 "caching ...
    /// the 30,000 most common values"). A read-write lock so warm hits
    /// never wait behind an in-progress tree walk. Capped at the
    /// walker's result capacity: the walker's LRU is the bounded source
    /// of truth; at the cap this read-through map replaces an arbitrary
    /// entry per insert (random replacement) so a shifted hot set still
    /// works its way in instead of being locked out by whatever filled
    /// the map first.
    ope_results: RwLock<HashMap<u64, u128>>,
    /// The same OPE key behind the paper's §3.1 batch-encryption cache:
    /// interior tree nodes are memoised, so misses walk shared
    /// range-split prefixes once (the AVL 25 ms → 7 ms optimisation).
    /// Sharded into [`OPE_WALKER_STRIPES`] stripe locks keyed by
    /// plaintext hash, so concurrent misses on *different* values walk
    /// in parallel instead of all but one falling back to the cacheless
    /// instance. Each stripe is still taken with `try_lock` — a
    /// contended stripe falls back rather than queueing.
    ope_walkers: Vec<Mutex<OpeCached>>,
    /// The walker's result capacity, mirrored so the read-through map's
    /// admission bound always matches however the walker was built.
    ope_result_cap: usize,
    /// This column's native JOIN-ADJ key.
    pub join: JoinKey,
    /// SEARCH key.
    search: SearchKey,
    /// Raw layer keys, exposed to ship to the server for onion peeling.
    pub rnd_eq_key: Key,
    pub rnd_ord_key: Key,
}

fn aes128(key: &Key) -> Aes {
    let mut k = [0u8; 16];
    k.copy_from_slice(&key[..16]);
    Aes::new_128(&k)
}

impl ColumnKeys {
    /// Derives all layer keys for `(table, column)` from `root` — the
    /// paper's Eq. (1), with the onion and layer names as path components.
    pub fn derive(root: &Key, table: &str, column: &str, ope_group: Option<&str>) -> Self {
        let path = |onion: &str, layer: &str| derive_key(root, &[table, column, onion, layer]);
        let rnd_eq_key = path("eq", "rnd");
        let rnd_ord_key = path("ord", "rnd");
        let det_key = path("eq", "det");
        let ope_key = match ope_group {
            // Range-join groups share an OPE key (the paper's OPE-JOIN
            // layer; see DESIGN.md substitution table).
            Some(g) => derive_key(root, &["opejoin-group", g]),
            None => path("ord", "ope"),
        };
        let join_key = path("eq", "joinadj");
        let search_key = path("search", "swp");
        // Stripe the walker: each stripe owns 1/Nth of the result and
        // node budgets so total cache memory matches the unsharded
        // design, and the read-through map's admission bound below is
        // the SUM of the stripe caps (accounting stays exact).
        let per_stripe_results = cryptdb_ope::DEFAULT_RESULT_CAP / OPE_WALKER_STRIPES;
        let per_stripe_nodes = cryptdb_ope::DEFAULT_NODE_CAP / OPE_WALKER_STRIPES;
        let ope_walkers: Vec<Mutex<OpeCached>> = (0..OPE_WALKER_STRIPES)
            .map(|_| {
                Mutex::new(OpeCached::with_capacity(
                    Ope::new(&ope_key, 64, 124),
                    per_stripe_results,
                    per_stripe_nodes,
                ))
            })
            .collect();
        let ope_result_cap = per_stripe_results * OPE_WALKER_STRIPES;
        ColumnKeys {
            rnd_eq: aes128(&rnd_eq_key),
            rnd_ord: aes128(&rnd_ord_key),
            det_int: Blowfish::new(&det_key),
            det_txt: aes128(&det_key),
            ope: Ope::new(&ope_key, 64, 124),
            ope_results: RwLock::new(HashMap::new()),
            ope_walkers,
            ope_result_cap,
            join: JoinKey::from_bytes(&join_key),
            search: SearchKey::new(&search_key),
            rnd_eq_key,
            rnd_ord_key,
        }
    }

    /// OPE encryption; `use_cache` routes through the shared node/result
    /// cache (§3.5.2 pre-computation on) or the cacheless instance.
    ///
    /// Concurrency shape: warm hits take only a read lock on the result
    /// map; a miss walks the tree through the node-cache walker when it
    /// is free, or the cacheless instance when another thread is already
    /// walking — so neither hits nor misses ever queue behind a
    /// multi-millisecond walk.
    pub fn ope_encrypt(&self, m: u64, use_cache: bool) -> Result<u128, OpeError> {
        if !use_cache {
            return self.ope.encrypt(m);
        }
        if let Some(&c) = self.ope_results.read().get(&m) {
            return Ok(c);
        }
        // Stripe selection by plaintext hash (Fibonacci multiplicative):
        // the same value always lands on the same stripe, so its interior
        // tree nodes are memoised exactly once across the stripes.
        let stripe =
            (m.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.ope_walkers.len();
        let c = match self.ope_walkers[stripe].try_lock() {
            Some(mut walker) => walker.encrypt(m)?,
            None => {
                // Contended walker. Before paying a full cacheless tree
                // walk, re-check the result map: under a thundering herd
                // on the same hot value (concurrent sessions inserting
                // the same constant) the thread holding the walker is
                // usually computing exactly this plaintext and has just
                // published it.
                if let Some(&c) = self.ope_results.read().get(&m) {
                    return Ok(c);
                }
                self.ope.encrypt(m)?
            }
        };
        let mut results = self.ope_results.write();
        if results.len() >= self.ope_result_cap && !results.contains_key(&m) {
            // Random replacement (HashMap iteration order is effectively
            // arbitrary): O(1), and a value hot enough to keep missing
            // re-inserts itself faster than it gets displaced.
            if let Some(victim) = results.keys().next().copied() {
                results.remove(&victim);
            }
        }
        if results.len() < self.ope_result_cap {
            results.insert(m, c);
        }
        Ok(c)
    }

    /// OPE decryption (lock-free: decryption never touches the caches).
    pub fn ope_decrypt(&self, c: u128) -> Result<u64, OpeError> {
        self.ope.decrypt(c)
    }

    /// Number of fully-cached OPE plaintext→ciphertext results.
    pub fn ope_cached_results(&self) -> usize {
        self.ope_results.read().len()
    }

    /// Wraps an Ord-onion plaintext (OPE bytes) in the RND layer.
    pub fn wrap_ord_rnd(&self, iv: &[u8], plaintext: &[u8]) -> Vec<u8> {
        cbc_encrypt(&self.rnd_ord, iv, plaintext)
    }
}

/// One encrypted cell: the server-side values for each onion column.
#[derive(Clone, Debug, Default)]
pub struct EncryptedCell {
    pub iv: Option<Value>,
    pub eq: Option<Value>,
    pub ord: Option<Value>,
    pub add: Option<Value>,
    pub srch: Option<Value>,
}

/// Canonical plaintext bytes for DET/JOIN purposes.
fn canonical_bytes(v: &Value) -> Result<Vec<u8>, ProxyError> {
    match v {
        Value::Int(i) => Ok((*i as u64).to_be_bytes().to_vec()),
        Value::Str(s) => Ok(s.as_bytes().to_vec()),
        other => Err(ProxyError::Crypto(format!(
            "cannot encrypt value of this type: {other:?}"
        ))),
    }
}

/// Order-preserving 64-bit encoding: sign-flipped integers, or the
/// big-endian first eight bytes for text (prefix order; see DESIGN.md).
fn ord_encode(v: &Value) -> Result<u64, ProxyError> {
    match v {
        Value::Int(i) => Ok(Ope::encode_i64(*i)),
        Value::Str(s) => {
            let mut b = [0u8; 8];
            let n = s.len().min(8);
            b[..n].copy_from_slice(&s.as_bytes()[..n]);
            Ok(u64::from_be_bytes(b))
        }
        other => Err(ProxyError::Crypto(format!("no order encoding: {other:?}"))),
    }
}

/// Encrypts one plaintext cell to all configured onions.
///
/// `join_key` is the column's *current effective* JOIN-ADJ key (it changes
/// when the column is re-keyed into another join group); `levels` are the
/// current onion levels — fresh values are encrypted only up to the layers
/// that have not been stripped (§3.3, write queries). The Ord onion goes
/// through the §3.5.2 batch-encryption cache; the proxy instead drives
/// OPE itself (via [`encrypt_ord_constant`] with its `precompute` config)
/// and disables `onions.ord` here.
#[allow(clippy::too_many_arguments)]
pub fn encrypt_cell<R: RngCore + ?Sized>(
    keys: &ColumnKeys,
    joinadj: &JoinAdj,
    join_key: &JoinKey,
    paillier: &PaillierPrivate,
    hom_blinding: Option<&cryptdb_bignum::Ubig>,
    v: &Value,
    ty: ColumnType,
    onions: &OnionSet,
    levels: (EqLevel, OrdLevel),
    with_jtag: bool,
    rng: &mut R,
) -> Result<EncryptedCell, ProxyError> {
    // NULLs pass through unencrypted (§3.3, "Other DBMS features").
    if v.is_null() {
        return Ok(EncryptedCell {
            iv: Some(Value::Null),
            eq: onions.eq.then_some(Value::Null),
            ord: onions.ord.then_some(Value::Null),
            add: onions.add.then_some(Value::Null),
            srch: onions.search.then_some(Value::Null),
        });
    }
    let mut iv = [0u8; IV_LEN];
    rng.fill_bytes(&mut iv);
    let mut cell = EncryptedCell {
        iv: Some(Value::Bytes(iv.to_vec())),
        ..Default::default()
    };

    if onions.eq {
        let canon = canonical_bytes(v)?;
        let det = match ty {
            ColumnType::Int => {
                let i = v
                    .as_int()
                    .ok_or_else(|| ProxyError::Crypto("int column with non-int value".into()))?;
                keys.det_int.encrypt_u64(i as u64).to_be_bytes().to_vec()
            }
            ColumnType::Text => cmc_encrypt(&keys.det_txt, &canon),
        };
        let mut blob = if with_jtag {
            joinadj.tag(join_key, &canon).to_vec()
        } else {
            Vec::new()
        };
        blob.extend_from_slice(&det);
        let eq_value = match levels.0 {
            EqLevel::Rnd => cbc_encrypt(&keys.rnd_eq, &iv, &blob),
            EqLevel::Det => blob,
        };
        cell.eq = Some(Value::Bytes(eq_value));
    }

    if onions.ord {
        let ope_ct = keys
            .ope_encrypt(ord_encode(v)?, true)
            .map_err(|e| ProxyError::Crypto(e.to_string()))?;
        let bytes = ope_ct.to_be_bytes().to_vec();
        let ord_value = match levels.1 {
            OrdLevel::Rnd => cbc_encrypt(&keys.rnd_ord, &iv, &bytes),
            OrdLevel::Ope => bytes,
        };
        cell.ord = Some(Value::Bytes(ord_value));
    }

    if onions.add {
        let i = v
            .as_int()
            .ok_or_else(|| ProxyError::Crypto("Add onion on non-integer".into()))?;
        let ct = match hom_blinding {
            Some(b) => paillier
                .public()
                .encrypt_with_blinding(&paillier.public().encode_i64(i), b),
            None => paillier.encrypt_i64(i, rng),
        };
        cell.add = Some(Value::Bytes(paillier.public().ciphertext_to_bytes(&ct)));
    }

    if onions.search {
        let s = v
            .as_str()
            .ok_or_else(|| ProxyError::Crypto("Search onion on non-text".into()))?;
        cell.srch = Some(Value::Bytes(keys.search.encrypt_text(s, rng).to_bytes()));
    }

    Ok(cell)
}

/// Encrypts a constant for an equality comparison at the Eq onion's
/// current DET level (the caller has already peeled RND).
pub fn encrypt_eq_constant(
    keys: &ColumnKeys,
    joinadj: &JoinAdj,
    join_key: &JoinKey,
    v: &Value,
    ty: ColumnType,
    with_jtag: bool,
) -> Result<Value, ProxyError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let canon = canonical_bytes(v)?;
    let det = match ty {
        ColumnType::Int => {
            let i = v
                .as_int()
                .ok_or_else(|| ProxyError::Crypto("int column with non-int constant".into()))?;
            keys.det_int.encrypt_u64(i as u64).to_be_bytes().to_vec()
        }
        ColumnType::Text => cmc_encrypt(&keys.det_txt, &canon),
    };
    let mut blob = if with_jtag {
        joinadj.tag(join_key, &canon).to_vec()
    } else {
        Vec::new()
    };
    blob.extend_from_slice(&det);
    Ok(Value::Bytes(blob))
}

/// Encrypts a constant for an order comparison (OPE layer).
/// `use_cache` routes through the §3.5.2 batch-encryption cache.
pub fn encrypt_ord_constant(
    keys: &ColumnKeys,
    v: &Value,
    use_cache: bool,
) -> Result<Value, ProxyError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let c = keys
        .ope_encrypt(ord_encode(v)?, use_cache)
        .map_err(|e| ProxyError::Crypto(e.to_string()))?;
    Ok(Value::Bytes(c.to_be_bytes().to_vec()))
}

/// Encrypts a constant into a HOM ciphertext (for increment updates).
pub fn encrypt_add_constant<R: RngCore + ?Sized>(
    paillier: &PaillierPrivate,
    v: i64,
    rng: &mut R,
) -> Value {
    let ct = paillier.encrypt_i64(v, rng);
    Value::Bytes(paillier.public().ciphertext_to_bytes(&ct))
}

/// Builds the serialised search token for a word (48 bytes: X ‖ k_w).
pub fn search_token_bytes(keys: &ColumnKeys, word: &str) -> Vec<u8> {
    let SearchToken { x, kw } = keys.search.token(word);
    let mut out = x.to_vec();
    out.extend_from_slice(&kw);
    out
}

/// Parses a serialised search token.
pub fn parse_search_token(bytes: &[u8]) -> Option<SearchToken> {
    if bytes.len() != 48 {
        return None;
    }
    Some(SearchToken {
        x: bytes[..16].try_into().ok()?,
        kw: bytes[16..48].try_into().ok()?,
    })
}

/// Decrypts a value from the Eq onion.
///
/// `iv` is required only when the onion is still at RND.
pub fn decrypt_eq(
    keys: &ColumnKeys,
    level: EqLevel,
    ty: ColumnType,
    value: &Value,
    iv: Option<&Value>,
    with_jtag: bool,
) -> Result<Value, ProxyError> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    let bytes = value
        .as_bytes()
        .ok_or_else(|| ProxyError::Crypto("Eq onion cell is not bytes".into()))?;
    let blob = match level {
        EqLevel::Rnd => {
            let iv = iv
                .and_then(|v| v.as_bytes())
                .ok_or_else(|| ProxyError::Crypto("missing IV for RND decryption".into()))?;
            cbc_decrypt(&keys.rnd_eq, iv, bytes)
                .ok_or_else(|| ProxyError::Crypto("RND layer decryption failed".into()))?
        }
        EqLevel::Det => bytes.to_vec(),
    };
    let jtag_len = if with_jtag { JTAG_LEN } else { 0 };
    if blob.len() < jtag_len {
        return Err(ProxyError::Crypto("Eq blob too short".into()));
    }
    let det = &blob[jtag_len..];
    match ty {
        ColumnType::Int => {
            let arr: [u8; 8] = det
                .try_into()
                .map_err(|_| ProxyError::Crypto("bad DET int length".into()))?;
            Ok(Value::Int(
                keys.det_int.decrypt_u64(u64::from_be_bytes(arr)) as i64,
            ))
        }
        ColumnType::Text => {
            let pt = cmc_decrypt(&keys.det_txt, det)
                .ok_or_else(|| ProxyError::Crypto("DET text decryption failed".into()))?;
            String::from_utf8(pt)
                .map(Value::Str)
                .map_err(|_| ProxyError::Crypto("DET text is not UTF-8".into()))
        }
    }
}

/// Decrypts a value from the Add onion (integers only).
pub fn decrypt_add(paillier: &PaillierPrivate, value: &Value) -> Result<Value, ProxyError> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    let bytes = value
        .as_bytes()
        .ok_or_else(|| ProxyError::Crypto("Add onion cell is not bytes".into()))?;
    let ct = paillier.public().ciphertext_from_bytes(bytes);
    paillier
        .decrypt_i64(&ct)
        .map(Value::Int)
        .ok_or_else(|| ProxyError::Crypto("HOM plaintext out of i64 range".into()))
}

/// Decrypts a value from the Ord onion (integers only; text prefix
/// encodings are not invertible).
pub fn decrypt_ord(
    keys: &ColumnKeys,
    level: OrdLevel,
    value: &Value,
    iv: Option<&Value>,
) -> Result<Value, ProxyError> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    let bytes = value
        .as_bytes()
        .ok_or_else(|| ProxyError::Crypto("Ord onion cell is not bytes".into()))?;
    let ope_bytes = match level {
        OrdLevel::Rnd => {
            let iv = iv
                .and_then(|v| v.as_bytes())
                .ok_or_else(|| ProxyError::Crypto("missing IV for RND decryption".into()))?;
            cbc_decrypt(&keys.rnd_ord, iv, bytes)
                .ok_or_else(|| ProxyError::Crypto("RND layer decryption failed".into()))?
        }
        OrdLevel::Ope => bytes.to_vec(),
    };
    let arr: [u8; 16] = ope_bytes[..]
        .try_into()
        .map_err(|_| ProxyError::Crypto("bad OPE length".into()))?;
    let m = keys
        .ope_decrypt(u128::from_be_bytes(arr))
        .map_err(|e| ProxyError::Crypto(e.to_string()))?;
    Ok(Value::Int(Ope::decode_i64(m)))
}

/// Server-visible types for the auxiliary functions the UDF module needs.
pub struct ServerCrypto {
    /// The Paillier public half — the server can multiply ciphertexts but
    /// never decrypt.
    pub paillier_public: PaillierPublic,
}

/// Checks a search token against a serialised word list (the UDF body).
pub fn search_matches(blob: &[u8], token: &SearchToken) -> bool {
    SearchCiphertext::from_bytes(blob)
        .map(|ct| cryptdb_search::matches_any(&ct, token))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptdb_crypto::rng::Drbg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ColumnKeys, JoinAdj, PaillierPrivate, Drbg) {
        let root = [3u8; 32];
        let keys = ColumnKeys::derive(&root, "emp", "salary", None);
        let ja = JoinAdj::new([9u8; 32]);
        let mut krng = StdRng::seed_from_u64(5);
        let paillier = PaillierPrivate::keygen(&mut krng, 256);
        (keys, ja, paillier, Drbg::from_seed(&[7u8; 32]))
    }

    fn enc(
        keys: &ColumnKeys,
        ja: &JoinAdj,
        p: &PaillierPrivate,
        rng: &mut Drbg,
        v: &Value,
        ty: ColumnType,
        levels: (EqLevel, OrdLevel),
    ) -> EncryptedCell {
        encrypt_cell(
            keys,
            ja,
            &keys.join,
            p,
            None,
            v,
            ty,
            &OnionSet::for_type(ty),
            levels,
            true,
            rng,
        )
        .unwrap()
    }

    #[test]
    fn int_roundtrip_all_onions() {
        let (keys, ja, p, mut rng) = setup();
        let v = Value::Int(-1234);
        let cell = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Int,
            (EqLevel::Rnd, OrdLevel::Rnd),
        );
        assert_eq!(
            decrypt_eq(
                &keys,
                EqLevel::Rnd,
                ColumnType::Int,
                cell.eq.as_ref().unwrap(),
                cell.iv.as_ref(),
                true
            )
            .unwrap(),
            v
        );
        assert_eq!(decrypt_add(&p, cell.add.as_ref().unwrap()).unwrap(), v);
        assert_eq!(
            decrypt_ord(
                &keys,
                OrdLevel::Rnd,
                cell.ord.as_ref().unwrap(),
                cell.iv.as_ref()
            )
            .unwrap(),
            v
        );
    }

    #[test]
    fn text_roundtrip() {
        let (keys, ja, p, mut rng) = setup();
        let v = Value::Str("private message body".into());
        let cell = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Text,
            (EqLevel::Det, OrdLevel::Rnd),
        );
        assert_eq!(
            decrypt_eq(
                &keys,
                EqLevel::Det,
                ColumnType::Text,
                cell.eq.as_ref().unwrap(),
                None,
                true
            )
            .unwrap(),
            v
        );
        // The search onion matches its words.
        let srch = cell.srch.as_ref().unwrap().as_bytes().unwrap().to_vec();
        let tok = parse_search_token(&search_token_bytes(&keys, "message")).unwrap();
        assert!(search_matches(&srch, &tok));
        let tok2 = parse_search_token(&search_token_bytes(&keys, "absent")).unwrap();
        assert!(!search_matches(&srch, &tok2));
    }

    #[test]
    fn rnd_is_probabilistic_det_is_deterministic() {
        let (keys, ja, p, mut rng) = setup();
        let v = Value::Int(42);
        let a = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Int,
            (EqLevel::Rnd, OrdLevel::Rnd),
        );
        let b = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Int,
            (EqLevel::Rnd, OrdLevel::Rnd),
        );
        assert_ne!(a.eq, b.eq, "RND must randomise equal plaintexts");
        let c = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Int,
            (EqLevel::Det, OrdLevel::Ope),
        );
        let d = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &v,
            ColumnType::Int,
            (EqLevel::Det, OrdLevel::Ope),
        );
        assert_eq!(c.eq, d.eq, "DET must repeat for equal plaintexts");
        assert_eq!(
            c.eq,
            Some(encrypt_eq_constant(&keys, &ja, &keys.join, &v, ColumnType::Int, true).unwrap())
        );
    }

    #[test]
    fn ope_layer_preserves_order() {
        let (keys, ja, p, mut rng) = setup();
        let mut prev: Option<Vec<u8>> = None;
        for v in [-100i64, -1, 0, 7, 5000] {
            let cell = enc(
                &keys,
                &ja,
                &p,
                &mut rng,
                &Value::Int(v),
                ColumnType::Int,
                (EqLevel::Det, OrdLevel::Ope),
            );
            let bytes = cell.ord.unwrap().as_bytes().unwrap().to_vec();
            if let Some(p) = prev {
                assert!(bytes > p, "OPE bytes must increase with plaintext");
            }
            prev = Some(bytes);
        }
    }

    #[test]
    fn null_passthrough() {
        let (keys, ja, p, mut rng) = setup();
        let cell = enc(
            &keys,
            &ja,
            &p,
            &mut rng,
            &Value::Null,
            ColumnType::Int,
            (EqLevel::Rnd, OrdLevel::Rnd),
        );
        assert_eq!(cell.eq, Some(Value::Null));
        assert_eq!(
            decrypt_eq(
                &keys,
                EqLevel::Rnd,
                ColumnType::Int,
                &Value::Null,
                None,
                true
            )
            .unwrap(),
            Value::Null
        );
    }
}
