//! Proxy metadata codec for durability.
//!
//! The engine WAL persists only ciphertext; the proxy's secret schema
//! state ([`EncSchema`]) — onion levels, join-key owners, staleness
//! flags, principal-type registry — is serialized with this codec and
//! attached to WAL records as the opaque `meta` blob. Recovery decodes
//! the *last* meta blob in the log (last-writer-wins), which by
//! construction reflects the schema after the final acknowledged
//! schema-changing statement.
//!
//! The format is a hand-rolled length-prefixed byte encoding (the repo
//! carries no serde). All integers are little-endian. Strings are
//! `u32 len + UTF-8 bytes`. `next_rid` counters are deliberately NOT
//! serialized: they are rebuilt on recovery from the engine's rid
//! column (max + 1), which is authoritative.

use crate::colcrypt::OnionSet;
use crate::error::ProxyError;
use crate::onion::{EqLevel, OrdLevel, SecLevel};
use crate::schema::{ColumnState, EncSchema, TableState};
use cryptdb_sqlparser::{
    BinOp, ColumnRef, ColumnType, EncFor, Expr, Literal, SpeakerRef, SpeaksFor,
};
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// Format version byte; bump on any wire change.
const META_VERSION: u8 = 1;

fn err(msg: impl Into<String>) -> ProxyError {
    ProxyError::Schema(format!("meta decode: {}", msg.into()))
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, f: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            f(out, x);
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProxyError> {
        if self.buf.len() - self.pos < n {
            return Err(err("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProxyError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProxyError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProxyError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProxyError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn boolean(&mut self) -> Result<bool, ProxyError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(err(format!("bad bool {b}"))),
        }
    }

    fn string(&mut self) -> Result<String, ProxyError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| err("bad utf-8"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProxyError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ProxyError>,
    ) -> Result<Option<T>, ProxyError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(err(format!("bad option tag {b}"))),
        }
    }

    fn done(&self) -> Result<(), ProxyError> {
        if self.pos != self.buf.len() {
            return Err(err("trailing bytes"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum codecs
// ---------------------------------------------------------------------------

fn put_column_type(out: &mut Vec<u8>, ty: ColumnType) {
    out.push(match ty {
        ColumnType::Int => 0,
        ColumnType::Text => 1,
    });
}

fn read_column_type(r: &mut Reader) -> Result<ColumnType, ProxyError> {
    match r.u8()? {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Text),
        b => Err(err(format!("bad column type {b}"))),
    }
}

fn put_sec_level(out: &mut Vec<u8>, l: SecLevel) {
    out.push(match l {
        SecLevel::Rnd => 0,
        SecLevel::Hom => 1,
        SecLevel::Search => 2,
        SecLevel::Det => 3,
        SecLevel::Join => 4,
        SecLevel::Ope => 5,
        SecLevel::Plain => 6,
    });
}

fn read_sec_level(r: &mut Reader) -> Result<SecLevel, ProxyError> {
    Ok(match r.u8()? {
        0 => SecLevel::Rnd,
        1 => SecLevel::Hom,
        2 => SecLevel::Search,
        3 => SecLevel::Det,
        4 => SecLevel::Join,
        5 => SecLevel::Ope,
        6 => SecLevel::Plain,
        b => return Err(err(format!("bad sec level {b}"))),
    })
}

fn put_bin_op(out: &mut Vec<u8>, op: BinOp) {
    out.push(match op {
        BinOp::Eq => 0,
        BinOp::NotEq => 1,
        BinOp::Lt => 2,
        BinOp::LtEq => 3,
        BinOp::Gt => 4,
        BinOp::GtEq => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
        BinOp::Add => 8,
        BinOp::Sub => 9,
        BinOp::Mul => 10,
        BinOp::Div => 11,
        BinOp::Mod => 12,
    });
}

fn read_bin_op(r: &mut Reader) -> Result<BinOp, ProxyError> {
    Ok(match r.u8()? {
        0 => BinOp::Eq,
        1 => BinOp::NotEq,
        2 => BinOp::Lt,
        3 => BinOp::LtEq,
        4 => BinOp::Gt,
        5 => BinOp::GtEq,
        6 => BinOp::And,
        7 => BinOp::Or,
        8 => BinOp::Add,
        9 => BinOp::Sub,
        10 => BinOp::Mul,
        11 => BinOp::Div,
        12 => BinOp::Mod,
        b => return Err(err(format!("bad binop {b}"))),
    })
}

// ---------------------------------------------------------------------------
// Expr codec (recursive — needed for SpeaksFor conditions)
// ---------------------------------------------------------------------------

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Column(c) => {
            out.push(0);
            put_opt(out, &c.table, |o, t| put_str(o, t));
            put_str(out, &c.column);
        }
        Expr::Literal(l) => {
            out.push(1);
            match l {
                Literal::Int(v) => {
                    out.push(0);
                    put_i64(out, *v);
                }
                Literal::Str(s) => {
                    out.push(1);
                    put_str(out, s);
                }
                Literal::Bytes(b) => {
                    out.push(2);
                    put_bytes(out, b);
                }
                Literal::Null => out.push(3),
            }
        }
        Expr::Binary { op, left, right } => {
            out.push(2);
            put_bin_op(out, *op);
            put_expr(out, left);
            put_expr(out, right);
        }
        Expr::Not(inner) => {
            out.push(3);
            put_expr(out, inner);
        }
        Expr::Neg(inner) => {
            out.push(4);
            put_expr(out, inner);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            out.push(5);
            put_expr(out, expr);
            put_expr(out, pattern);
            put_bool(out, *negated);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            out.push(6);
            put_expr(out, expr);
            put_u32(out, list.len() as u32);
            for item in list {
                put_expr(out, item);
            }
            put_bool(out, *negated);
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            out.push(7);
            put_expr(out, expr);
            put_expr(out, low);
            put_expr(out, high);
            put_bool(out, *negated);
        }
        Expr::IsNull { expr, negated } => {
            out.push(8);
            put_expr(out, expr);
            put_bool(out, *negated);
        }
        Expr::Func {
            name,
            args,
            star,
            distinct,
        } => {
            out.push(9);
            put_str(out, name);
            put_u32(out, args.len() as u32);
            for a in args {
                put_expr(out, a);
            }
            put_bool(out, *star);
            put_bool(out, *distinct);
        }
        // SPEAKS-FOR conditions come from CREATE TABLE annotations and
        // never carry placeholders, but the codec must stay total.
        Expr::Param(n) => {
            out.push(10);
            put_u32(out, *n);
        }
    }
}

fn read_expr(r: &mut Reader) -> Result<Expr, ProxyError> {
    Ok(match r.u8()? {
        0 => {
            let table = r.opt(|r| r.string())?;
            let column = r.string()?;
            Expr::Column(ColumnRef { table, column })
        }
        1 => Expr::Literal(match r.u8()? {
            0 => Literal::Int(r.i64()?),
            1 => Literal::Str(r.string()?),
            2 => Literal::Bytes(r.bytes()?),
            3 => Literal::Null,
            b => return Err(err(format!("bad literal tag {b}"))),
        }),
        2 => {
            let op = read_bin_op(r)?;
            let left = Box::new(read_expr(r)?);
            let right = Box::new(read_expr(r)?);
            Expr::Binary { op, left, right }
        }
        3 => Expr::Not(Box::new(read_expr(r)?)),
        4 => Expr::Neg(Box::new(read_expr(r)?)),
        5 => {
            let expr = Box::new(read_expr(r)?);
            let pattern = Box::new(read_expr(r)?);
            let negated = r.boolean()?;
            Expr::Like {
                expr,
                pattern,
                negated,
            }
        }
        6 => {
            let expr = Box::new(read_expr(r)?);
            let n = r.u32()? as usize;
            let mut list = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                list.push(read_expr(r)?);
            }
            let negated = r.boolean()?;
            Expr::InList {
                expr,
                list,
                negated,
            }
        }
        7 => {
            let expr = Box::new(read_expr(r)?);
            let low = Box::new(read_expr(r)?);
            let high = Box::new(read_expr(r)?);
            let negated = r.boolean()?;
            Expr::Between {
                expr,
                low,
                high,
                negated,
            }
        }
        8 => {
            let expr = Box::new(read_expr(r)?);
            let negated = r.boolean()?;
            Expr::IsNull { expr, negated }
        }
        9 => {
            let name = r.string()?;
            let n = r.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(read_expr(r)?);
            }
            let star = r.boolean()?;
            let distinct = r.boolean()?;
            Expr::Func {
                name,
                args,
                star,
                distinct,
            }
        }
        10 => Expr::Param(r.u32()?),
        b => return Err(err(format!("bad expr tag {b}"))),
    })
}

// ---------------------------------------------------------------------------
// Schema codecs
// ---------------------------------------------------------------------------

fn put_speaks_for(out: &mut Vec<u8>, s: &SpeaksFor) {
    match &s.speaker {
        SpeakerRef::Column(c) => {
            out.push(0);
            put_str(out, c);
        }
        SpeakerRef::ForeignColumn { table, column } => {
            out.push(1);
            put_str(out, table);
            put_str(out, column);
        }
        SpeakerRef::Const(c) => {
            out.push(2);
            put_str(out, c);
        }
    }
    put_str(out, &s.speaker_type);
    put_str(out, &s.object_column);
    put_str(out, &s.object_type);
    put_opt(out, &s.condition, put_expr);
}

fn read_speaks_for(r: &mut Reader) -> Result<SpeaksFor, ProxyError> {
    let speaker = match r.u8()? {
        0 => SpeakerRef::Column(r.string()?),
        1 => SpeakerRef::ForeignColumn {
            table: r.string()?,
            column: r.string()?,
        },
        2 => SpeakerRef::Const(r.string()?),
        b => return Err(err(format!("bad speaker tag {b}"))),
    };
    Ok(SpeaksFor {
        speaker,
        speaker_type: r.string()?,
        object_column: r.string()?,
        object_type: r.string()?,
        condition: r.opt(read_expr)?,
    })
}

fn put_column(out: &mut Vec<u8>, c: &ColumnState) {
    put_str(out, &c.name);
    put_str(out, &c.table);
    put_column_type(out, c.ty);
    put_str(out, &c.anon);
    put_bool(out, c.sensitive);
    put_opt(out, &c.enc_for, |o, e| {
        put_str(o, &e.key_column);
        put_str(o, &e.princ_type);
    });
    put_bool(out, c.onions.eq);
    put_bool(out, c.onions.ord);
    put_bool(out, c.onions.add);
    put_bool(out, c.onions.search);
    out.push(match c.eq_level {
        EqLevel::Rnd => 0,
        EqLevel::Det => 1,
    });
    out.push(match c.ord_level {
        OrdLevel::Rnd => 0,
        OrdLevel::Ope => 1,
    });
    put_str(out, &c.join_owner.0);
    put_str(out, &c.join_owner.1);
    put_bool(out, c.stale);
    put_opt(out, &c.min_level, |o, l| put_sec_level(o, *l));
    put_opt(out, &c.ope_group, |o, g| put_str(o, g));
    put_bool(out, c.has_jtag);
    put_bool(out, c.search_used);
}

fn read_column(r: &mut Reader) -> Result<ColumnState, ProxyError> {
    Ok(ColumnState {
        name: r.string()?,
        table: r.string()?,
        ty: read_column_type(r)?,
        anon: r.string()?,
        sensitive: r.boolean()?,
        enc_for: r.opt(|r| {
            Ok(EncFor {
                key_column: r.string()?,
                princ_type: r.string()?,
            })
        })?,
        onions: OnionSet {
            eq: r.boolean()?,
            ord: r.boolean()?,
            add: r.boolean()?,
            search: r.boolean()?,
        },
        eq_level: match r.u8()? {
            0 => EqLevel::Rnd,
            1 => EqLevel::Det,
            b => return Err(err(format!("bad eq level {b}"))),
        },
        ord_level: match r.u8()? {
            0 => OrdLevel::Rnd,
            1 => OrdLevel::Ope,
            b => return Err(err(format!("bad ord level {b}"))),
        },
        join_owner: (r.string()?, r.string()?),
        stale: r.boolean()?,
        min_level: r.opt(read_sec_level)?,
        ope_group: r.opt(|r| r.string())?,
        has_jtag: r.boolean()?,
        search_used: r.boolean()?,
    })
}

fn put_table(out: &mut Vec<u8>, t: &TableState) {
    put_str(out, &t.name);
    put_str(out, &t.anon);
    put_u32(out, t.columns.len() as u32);
    for c in &t.columns {
        put_column(out, c);
    }
    put_u32(out, t.speaks_for.len() as u32);
    for s in &t.speaks_for {
        put_speaks_for(out, s);
    }
}

fn read_table(r: &mut Reader) -> Result<TableState, ProxyError> {
    let name = r.string()?;
    let anon = r.string()?;
    let ncols = r.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(4096));
    for _ in 0..ncols {
        columns.push(read_column(r)?);
    }
    let nsf = r.u32()? as usize;
    let mut speaks_for = Vec::with_capacity(nsf.min(4096));
    for _ in 0..nsf {
        speaks_for.push(read_speaks_for(r)?);
    }
    Ok(TableState {
        name,
        anon,
        columns,
        speaks_for,
        // Rebuilt by the recovery path from the engine's rid column.
        next_rid: Arc::new(AtomicI64::new(1)),
    })
}

/// Serializes the full proxy schema state (minus `next_rid` counters).
pub fn encode(schema: &EncSchema) -> Vec<u8> {
    let mut out = vec![META_VERSION];
    put_u64(&mut out, schema.next_table_id() as u64);
    let mut tables: Vec<&TableState> = schema.tables().collect();
    tables.sort_by(|a, b| a.name.cmp(&b.name));
    put_u32(&mut out, tables.len() as u32);
    for t in tables {
        put_table(&mut out, t);
    }
    let princ = schema.princ_types();
    put_u32(&mut out, princ.len() as u32);
    for (name, external) in princ {
        put_str(&mut out, name);
        put_bool(&mut out, *external);
    }
    out
}

/// Decodes a schema previously produced by [`encode`]. `next_rid`
/// counters come back as 1; the caller rebuilds them from the engine.
pub fn decode(buf: &[u8]) -> Result<EncSchema, ProxyError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != META_VERSION {
        return Err(err(format!("unsupported meta version {version}")));
    }
    let next_table_id = r.u64()? as usize;
    let mut schema = EncSchema::new();
    schema.set_next_table_id(next_table_id);
    let ntables = r.u32()? as usize;
    for _ in 0..ntables {
        schema.insert(read_table(&mut r)?)?;
    }
    let nprinc = r.u32()? as usize;
    for _ in 0..nprinc {
        let name = r.string()?;
        let external = r.boolean()?;
        schema.register_princ_type(&name, external);
    }
    r.done()?;
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptdb_sqlparser::BinOp;

    fn sample_schema() -> EncSchema {
        let mut schema = EncSchema::new();
        schema.set_next_table_id(3);
        schema.register_princ_type("physical_user", true);
        schema.register_princ_type("msg", false);
        let col = |name: &str, ty, anon: &str| ColumnState {
            name: name.to_string(),
            table: "emails".to_string(),
            ty,
            anon: anon.to_string(),
            sensitive: true,
            enc_for: None,
            onions: OnionSet::for_type(ty),
            eq_level: EqLevel::Det,
            ord_level: OrdLevel::Rnd,
            join_owner: ("emails".to_string(), name.to_string()),
            stale: false,
            min_level: None,
            ope_group: None,
            has_jtag: true,
            search_used: false,
        };
        let mut body = col("body", ColumnType::Text, "c2");
        body.enc_for = Some(EncFor {
            key_column: "msgid".to_string(),
            princ_type: "msg".to_string(),
        });
        body.stale = true;
        body.min_level = Some(SecLevel::Search);
        body.ope_group = Some("g1".to_string());
        body.has_jtag = false;
        body.search_used = true;
        schema
            .insert(TableState {
                name: "emails".to_string(),
                anon: "table2".to_string(),
                columns: vec![col("msgid", ColumnType::Int, "c1"), body],
                speaks_for: vec![SpeaksFor {
                    speaker: SpeakerRef::ForeignColumn {
                        table: "users".to_string(),
                        column: "uid".to_string(),
                    },
                    speaker_type: "user".to_string(),
                    object_column: "msgid".to_string(),
                    object_type: "msg".to_string(),
                    condition: Some(Expr::binary(BinOp::Eq, Expr::col("sender"), Expr::int(1))),
                }],
                next_rid: Arc::new(AtomicI64::new(42)),
            })
            .unwrap();
        schema
    }

    #[test]
    fn roundtrip_preserves_everything_but_rid() {
        let schema = sample_schema();
        let buf = encode(&schema);
        let back = decode(&buf).unwrap();
        assert_eq!(back.next_table_id(), 3);
        assert_eq!(
            back.princ_types(),
            &[
                ("physical_user".to_string(), true),
                ("msg".to_string(), false)
            ]
        );
        let t = back.table("emails").unwrap();
        let orig = schema.table("emails").unwrap();
        assert_eq!(t.anon, orig.anon);
        assert_eq!(t.columns.len(), 2);
        for (a, b) in t.columns.iter().zip(&orig.columns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.anon, b.anon);
            assert_eq!(a.ty, b.ty);
            assert_eq!(a.enc_for, b.enc_for);
            assert_eq!(a.onions, b.onions);
            assert_eq!(a.eq_level, b.eq_level);
            assert_eq!(a.ord_level, b.ord_level);
            assert_eq!(a.join_owner, b.join_owner);
            assert_eq!(a.stale, b.stale);
            assert_eq!(a.min_level, b.min_level);
            assert_eq!(a.ope_group, b.ope_group);
            assert_eq!(a.has_jtag, b.has_jtag);
            assert_eq!(a.search_used, b.search_used);
        }
        assert_eq!(t.speaks_for, orig.speaks_for);
        // next_rid is rebuilt by recovery, not carried by the codec.
        assert_eq!(t.next_rid.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[9, 0, 0]).is_err());
        let mut buf = encode(&sample_schema());
        buf.push(0); // trailing byte
        assert!(decode(&buf).is_err());
        buf.pop();
        buf.truncate(buf.len() - 3);
        assert!(decode(&buf).is_err());
    }
}
