//! Server-side UDFs.
//!
//! These are the engine-registered counterparts of the paper's MySQL UDFs
//! (§3, §7): everything here runs on the *DBMS server* and sees only
//! ciphertexts plus whatever key material the proxy ships inside a query
//! (onion-layer keys during adjustments, ΔK during join re-keying, search
//! tokens). None of it can decrypt to plaintext except `DECRYPT_RND`,
//! which by design peels exactly one onion layer with the key the proxy
//! chose to reveal.

use crate::colcrypt::{parse_search_token, search_matches, JTAG_LEN};
use cryptdb_bignum::Ubig;
use cryptdb_crypto::aes::Aes;
use cryptdb_crypto::modes::cbc_decrypt;
use cryptdb_ecgroup::{JoinAdj, Scalar};
use cryptdb_engine::{AggregateUdf, Engine, EngineError, Value};
use cryptdb_paillier::PaillierPublic;
use std::sync::Arc;

fn bytes_arg(args: &[Value], i: usize, what: &str) -> Result<Vec<u8>, EngineError> {
    match args.get(i) {
        Some(Value::Bytes(b)) => Ok(b.clone()),
        Some(Value::Null) => Err(EngineError::Udf(format!("{what}: NULL"))),
        other => Err(EngineError::Udf(format!(
            "{what}: expected bytes, got {other:?}"
        ))),
    }
}

/// Registers all CryptDB UDFs into an engine. The server receives only the
/// Paillier *public* parameters.
pub fn register_udfs(engine: &Engine, paillier_public: PaillierPublic) {
    // DECRYPT_RND(key32, ciphertext, iv) -> inner bytes.
    // The onion-adjustment UDF (§3.2): strips the RND layer using the
    // layer key the proxy just revealed.
    engine.register_scalar_udf("DECRYPT_RND", |args| {
        if matches!(args.get(1), Some(Value::Null)) {
            return Ok(Value::Null);
        }
        let key = bytes_arg(args, 0, "DECRYPT_RND key")?;
        let ct = bytes_arg(args, 1, "DECRYPT_RND ciphertext")?;
        let iv = bytes_arg(args, 2, "DECRYPT_RND iv")?;
        if key.len() < 16 {
            return Err(EngineError::Udf("DECRYPT_RND: short key".into()));
        }
        let mut k = [0u8; 16];
        k.copy_from_slice(&key[..16]);
        let aes = Aes::new_128(&k);
        cbc_decrypt(&aes, &iv, &ct)
            .map(Value::Bytes)
            .ok_or_else(|| EngineError::Udf("DECRYPT_RND: bad ciphertext".into()))
    });

    // JOINTAG(eq_blob) -> 32-byte JOIN-ADJ tag (for equi-join comparison).
    engine.register_scalar_udf("JOINTAG", |args| {
        if matches!(args.first(), Some(Value::Null)) {
            return Ok(Value::Null);
        }
        let blob = bytes_arg(args, 0, "JOINTAG blob")?;
        if blob.len() < JTAG_LEN {
            return Err(EngineError::Udf("JOINTAG: blob too short".into()));
        }
        Ok(Value::Bytes(blob[..JTAG_LEN].to_vec()))
    });

    // JOIN_ADJ(eq_blob, delta32) -> re-keyed blob (§3.4): raises the
    // JOIN-ADJ tag to ΔK, leaving the DET part untouched.
    engine.register_scalar_udf("JOIN_ADJ", |args| {
        if matches!(args.first(), Some(Value::Null)) {
            return Ok(Value::Null);
        }
        let blob = bytes_arg(args, 0, "JOIN_ADJ blob")?;
        let delta = bytes_arg(args, 1, "JOIN_ADJ delta")?;
        if blob.len() < JTAG_LEN || delta.len() != 32 {
            return Err(EngineError::Udf("JOIN_ADJ: malformed input".into()));
        }
        let tag: [u8; JTAG_LEN] = blob[..JTAG_LEN].try_into().expect("length checked");
        let scalar = Scalar::from_bytes_mod_order(&delta.try_into().expect("length checked"));
        let new_tag = JoinAdj::adjust(&tag, &scalar)
            .ok_or_else(|| EngineError::Udf("JOIN_ADJ: degenerate tag".into()))?;
        let mut out = new_tag.to_vec();
        out.extend_from_slice(&blob[JTAG_LEN..]);
        Ok(Value::Bytes(out))
    });

    // SEARCH_MATCH(srch_blob, token48) -> 0/1 (§3.1 SEARCH): the server
    // learns only whether this token matched this word list.
    engine.register_scalar_udf("SEARCH_MATCH", |args| {
        if matches!(args.first(), Some(Value::Null)) {
            return Ok(Value::Int(0));
        }
        let blob = bytes_arg(args, 0, "SEARCH_MATCH blob")?;
        let token_bytes = bytes_arg(args, 1, "SEARCH_MATCH token")?;
        let token = parse_search_token(&token_bytes)
            .ok_or_else(|| EngineError::Udf("SEARCH_MATCH: bad token".into()))?;
        Ok(Value::Int(search_matches(&blob, &token) as i64))
    });

    // HOM_ADD(c1, c2) -> Paillier product = encryption of the sum (§3.1).
    let pp = paillier_public.clone();
    engine.register_scalar_udf("HOM_ADD", move |args| {
        if matches!(args.first(), Some(Value::Null)) {
            return Ok(args.get(1).cloned().unwrap_or(Value::Null));
        }
        if matches!(args.get(1), Some(Value::Null)) {
            return Ok(args[0].clone());
        }
        let a = pp.ciphertext_from_bytes(&bytes_arg(args, 0, "HOM_ADD a")?);
        let b = pp.ciphertext_from_bytes(&bytes_arg(args, 1, "HOM_ADD b")?);
        Ok(Value::Bytes(pp.ciphertext_to_bytes(&pp.add(&a, &b))))
    });

    // HOM_MUL_PLAIN(c, k) -> encryption of m·k.
    let pp = paillier_public.clone();
    engine.register_scalar_udf("HOM_MUL_PLAIN", move |args| {
        if matches!(args.first(), Some(Value::Null)) {
            return Ok(Value::Null);
        }
        let c = pp.ciphertext_from_bytes(&bytes_arg(args, 0, "HOM_MUL_PLAIN c")?);
        let k = args
            .get(1)
            .and_then(Value::as_int)
            .ok_or_else(|| EngineError::Udf("HOM_MUL_PLAIN: int k expected".into()))?;
        if k < 0 {
            return Err(EngineError::Udf("HOM_MUL_PLAIN: negative k".into()));
        }
        let r = pp.mul_plain(&c, &Ubig::from_u64(k as u64));
        Ok(Value::Bytes(pp.ciphertext_to_bytes(&r)))
    });

    // HOM_SUM(col): the aggregate the proxy substitutes for SUM (§3.3).
    let pp = paillier_public.clone();
    let init = Value::Bytes(paillier_public.ciphertext_to_bytes(&paillier_public.zero()));
    engine.register_aggregate_udf(
        "HOM_SUM",
        AggregateUdf {
            init,
            step: Arc::new(move |acc, v| {
                let Value::Bytes(acc_bytes) = &acc else {
                    return Err(EngineError::Udf("HOM_SUM: bad accumulator".into()));
                };
                let Some(vb) = v.as_bytes() else {
                    return Ok(acc); // NULLs are skipped by the engine, but be safe.
                };
                let a = pp.ciphertext_from_bytes(acc_bytes);
                let b = pp.ciphertext_from_bytes(vb);
                Ok(Value::Bytes(pp.ciphertext_to_bytes(&pp.add(&a, &b))))
            }),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptdb_paillier::PaillierPrivate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hom_sum_via_engine() {
        let mut rng = StdRng::seed_from_u64(1);
        let sk = PaillierPrivate::keygen(&mut rng, 256);
        let engine = Engine::new();
        register_udfs(&engine, sk.public().clone());
        engine.execute_sql("CREATE TABLE t (v text)").unwrap();
        for x in [10i64, 20, 12] {
            let ct = sk.encrypt_i64(x, &mut rng);
            let hex: String = sk
                .public()
                .ciphertext_to_bytes(&ct)
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect();
            engine
                .execute_sql(&format!("INSERT INTO t (v) VALUES (x'{hex}')"))
                .unwrap();
        }
        let r = engine.execute_sql("SELECT HOM_SUM(v) FROM t").unwrap();
        let Some(Value::Bytes(sum_bytes)) = r.scalar().cloned() else {
            panic!()
        };
        let sum = sk.decrypt_i64(&sk.public().ciphertext_from_bytes(&sum_bytes));
        assert_eq!(sum, Some(42));
    }

    #[test]
    fn jointag_and_adjust() {
        let engine = Engine::new();
        let mut rng = StdRng::seed_from_u64(2);
        let sk = PaillierPrivate::keygen(&mut rng, 256);
        register_udfs(&engine, sk.public().clone());
        let ja = JoinAdj::new([4u8; 32]);
        let k1 = cryptdb_ecgroup::JoinKey::from_bytes(&[1u8; 32]);
        let k2 = cryptdb_ecgroup::JoinKey::from_bytes(&[2u8; 32]);
        let mut blob = ja.tag(&k2, b"alice").to_vec();
        blob.extend_from_slice(b"detpart!");
        engine.execute_sql("CREATE TABLE t (c text)").unwrap();
        let hex: String = blob.iter().map(|b| format!("{b:02x}")).collect();
        engine
            .execute_sql(&format!("INSERT INTO t (c) VALUES (x'{hex}')"))
            .unwrap();
        let delta = JoinAdj::delta(&k2, &k1);
        let dhex: String = delta
            .to_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        engine
            .execute_sql(&format!("UPDATE t SET c = JOIN_ADJ(c, x'{dhex}')"))
            .unwrap();
        let r = engine.execute_sql("SELECT JOINTAG(c) FROM t").unwrap();
        assert_eq!(
            r.scalar(),
            Some(&Value::Bytes(ja.tag(&k1, b"alice").to_vec()))
        );
        // The DET part is untouched.
        let r = engine.execute_sql("SELECT c FROM t").unwrap();
        let Some(Value::Bytes(b)) = r.scalar() else {
            panic!()
        };
        assert_eq!(&b[32..], b"detpart!");
    }
}
