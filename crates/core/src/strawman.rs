//! The Fig. 11 strawman design.
//!
//! "The strawman performs each query over data encrypted with RND by
//! decrypting the relevant data using a UDF, performing the query over the
//! plaintext, and re-encrypting the result (if updating rows)." Every
//! predicate becomes a per-row server-side decryption, so the DBMS's
//! indexes are useless — which is exactly what the figure demonstrates.

use crate::error::ProxyError;
use cryptdb_crypto::aes::Aes;
use cryptdb_crypto::modes::{cbc_decrypt, cbc_encrypt};
use cryptdb_crypto::prf::{derive_key, Key};
use cryptdb_engine::{Engine, EngineError, QueryResult, Value};
use cryptdb_sqlparser::{
    parse, BinOp, ColumnDef, ColumnRef, ColumnType, CreateTable, Delete, Expr, Insert, Literal,
    OrderBy, Select, SelectItem, Stmt, TableRef, Update,
};
use parking_lot::RwLock;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-table strawman schema state.
#[derive(Clone)]
struct StrawTable {
    anon: String,
    /// column name (lower) → (anon base, type).
    cols: Vec<(String, String, ColumnType)>,
}

impl StrawTable {
    fn col(&self, name: &str) -> Option<&(String, String, ColumnType)> {
        let l = name.to_lowercase();
        self.cols.iter().find(|(n, _, _)| *n == l)
    }
}

/// The strawman proxy: RND-only encryption with per-row UDF decryption.
pub struct Strawman {
    engine: Arc<Engine>,
    key: Key,
    tables: RwLock<HashMap<String, StrawTable>>,
    next_id: RwLock<usize>,
}

fn aes_of(key: &Key) -> Aes {
    let mut k = [0u8; 16];
    k.copy_from_slice(&key[..16]);
    Aes::new_128(&k)
}

impl Strawman {
    /// Creates a strawman proxy and registers its UDFs.
    pub fn new(engine: Arc<Engine>, master_key: Key) -> Self {
        let key = derive_key(&master_key, &["strawman"]);
        // STRAW_DEC(key, ct, iv) -> Int or Str plaintext.
        engine.register_scalar_udf("STRAW_DEC_INT", {
            move |args| {
                straw_dec(args).map(|pt| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&pt[..8.min(pt.len())]);
                    Value::Int(i64::from_be_bytes(b))
                })
            }
        });
        engine.register_scalar_udf("STRAW_DEC_TEXT", move |args| {
            straw_dec(args).and_then(|pt| {
                String::from_utf8(pt)
                    .map(Value::Str)
                    .map_err(|_| EngineError::Udf("bad utf8".into()))
            })
        });
        Strawman {
            engine,
            key,
            tables: RwLock::new(HashMap::new()),
            next_id: RwLock::new(0),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    fn encrypt(&self, v: &Value) -> Result<(Value, Value), ProxyError> {
        if v.is_null() {
            return Ok((Value::Null, Value::Null));
        }
        let aes = aes_of(&self.key);
        let mut iv = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut iv);
        let pt = match v {
            Value::Int(i) => i.to_be_bytes().to_vec(),
            Value::Str(s) => s.as_bytes().to_vec(),
            _ => return Err(ProxyError::Crypto("strawman: unsupported value".into())),
        };
        Ok((
            Value::Bytes(cbc_encrypt(&aes, &iv, &pt)),
            Value::Bytes(iv.to_vec()),
        ))
    }

    fn key_literal(&self) -> Expr {
        Expr::Literal(Literal::Bytes(self.key.to_vec()))
    }

    /// Wraps a column reference into its decryption UDF call.
    fn dec_expr(&self, t: &StrawTable, name: &str) -> Result<Expr, ProxyError> {
        let (_, anon, ty) = t
            .col(name)
            .ok_or_else(|| ProxyError::Schema(format!("unknown column {name}")))?;
        let udf = match ty {
            ColumnType::Int => "STRAW_DEC_INT",
            ColumnType::Text => "STRAW_DEC_TEXT",
        };
        Ok(Expr::Func {
            name: udf.into(),
            args: vec![
                self.key_literal(),
                Expr::col(format!("{anon}_ct")),
                Expr::col(format!("{anon}_iv")),
            ],
            star: false,
            distinct: false,
        })
    }

    fn rw_expr(&self, t: &StrawTable, e: &Expr) -> Result<Expr, ProxyError> {
        Ok(match e {
            Expr::Column(c) => self.dec_expr(t, &c.column)?,
            Expr::Literal(_) | Expr::Param(_) => e.clone(),
            Expr::Binary { op, left, right } => {
                Expr::binary(*op, self.rw_expr(t, left)?, self.rw_expr(t, right)?)
            }
            Expr::Not(x) => Expr::Not(Box::new(self.rw_expr(t, x)?)),
            Expr::Neg(x) => Expr::Neg(Box::new(self.rw_expr(t, x)?)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.rw_expr(t, expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.rw_expr(t, expr)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.rw_expr(t, expr)?),
                low: low.clone(),
                high: high.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.rw_expr(t, expr)?),
                negated: *negated,
            },
            Expr::Func {
                name,
                args,
                star,
                distinct,
            } => Expr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rw_expr(t, a))
                    .collect::<Result<_, _>>()?,
                star: *star,
                distinct: *distinct,
            },
        })
    }

    /// Executes SQL under the strawman design.
    pub fn execute(&self, sql: &str) -> Result<QueryResult, ProxyError> {
        let stmts = parse(sql)?;
        let mut last = QueryResult::Ok;
        for stmt in stmts {
            last = self.execute_stmt(&stmt)?;
        }
        Ok(last)
    }

    fn execute_stmt(&self, stmt: &Stmt) -> Result<QueryResult, ProxyError> {
        match stmt {
            Stmt::CreateTable(ct) => self.create_table(ct),
            Stmt::CreateIndex { table, column } => {
                // Indexes can be created but are useless over RND — the
                // strawman's defining weakness (Fig. 11).
                let tables = self.tables.read();
                let t = tables
                    .get(&table.to_lowercase())
                    .ok_or_else(|| ProxyError::Schema(format!("unknown table {table}")))?;
                let (_, anon, _) = t
                    .col(column)
                    .ok_or_else(|| ProxyError::Schema(format!("unknown column {column}")))?;
                Ok(self.engine.execute(&Stmt::CreateIndex {
                    table: t.anon.clone(),
                    column: format!("{anon}_ct"),
                })?)
            }
            Stmt::Insert(ins) => self.insert(ins),
            Stmt::Select(sel) => self.select(sel),
            Stmt::Update(upd) => self.update(upd),
            Stmt::Delete(del) => self.delete(del),
            other => Err(ProxyError::NeedsPlaintext(format!(
                "strawman does not support {other:?}"
            ))),
        }
    }

    fn create_table(&self, ct: &CreateTable) -> Result<QueryResult, ProxyError> {
        let mut id = self.next_id.write();
        *id += 1;
        let anon_id = *id;
        let anon = format!("straw{anon_id}");
        drop(id);
        let cols: Vec<(String, String, ColumnType)> = ct
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    c.name.to_lowercase(),
                    format!("s{id}_{i}", id = anon_id),
                    c.ty,
                )
            })
            .collect();
        let mut server_cols = Vec::new();
        for (_, anon_base, _) in &cols {
            for suffix in ["ct", "iv"] {
                server_cols.push(ColumnDef {
                    name: format!("{anon_base}_{suffix}"),
                    ty: ColumnType::Text,
                    enc_for: None,
                });
            }
        }
        self.engine.execute(&Stmt::CreateTable(CreateTable {
            name: anon.clone(),
            columns: server_cols,
            speaks_for: Vec::new(),
        }))?;
        self.tables
            .write()
            .insert(ct.name.to_lowercase(), StrawTable { anon, cols });
        Ok(QueryResult::Ok)
    }

    fn insert(&self, ins: &Insert) -> Result<QueryResult, ProxyError> {
        let t = self
            .tables
            .read()
            .get(&ins.table.to_lowercase())
            .cloned()
            .ok_or_else(|| ProxyError::Schema(format!("unknown table {}", ins.table)))?;
        let mut anon_cols = Vec::new();
        for c in &ins.columns {
            let (_, anon, _) = t
                .col(c)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {c}")))?;
            anon_cols.push(format!("{anon}_ct"));
            anon_cols.push(format!("{anon}_iv"));
        }
        let mut rows = Vec::new();
        for row in &ins.rows {
            let mut out = Vec::new();
            for e in row {
                let v = crate::proxy::const_fold(e)?;
                let (ct, iv) = self.encrypt(&v)?;
                out.push(lit(ct));
                out.push(lit(iv));
            }
            rows.push(out);
        }
        let n = rows.len();
        self.engine.execute(&Stmt::Insert(Insert {
            table: t.anon.clone(),
            columns: anon_cols,
            rows,
        }))?;
        Ok(QueryResult::Affected(n))
    }

    fn select(&self, sel: &Select) -> Result<QueryResult, ProxyError> {
        // Merge all referenced tables into one resolution scope (column
        // names must be unique across them, as in TPC-C). Joins degenerate
        // to decrypt-everything nested loops — the strawman's point.
        let tables = self.tables.read();
        let mut merged_cols = Vec::new();
        let mut from = Vec::new();
        let mut extra_tables = Vec::new();
        for tref in sel.from.iter().chain(sel.joins.iter().map(|j| &j.table)) {
            let st = tables
                .get(&tref.name.to_lowercase())
                .cloned()
                .ok_or_else(|| ProxyError::Schema(format!("unknown table {}", tref.name)))?;
            merged_cols.extend(st.cols.iter().cloned());
            if from.is_empty() {
                from.push(TableRef {
                    name: st.anon.clone(),
                    alias: None,
                });
            } else {
                extra_tables.push(TableRef {
                    name: st.anon.clone(),
                    alias: None,
                });
            }
        }
        drop(tables);
        let t = StrawTable {
            anon: match from.first() {
                Some(f) => f.name.clone(),
                None => {
                    return Err(ProxyError::NeedsPlaintext(
                        "strawman needs a FROM table".into(),
                    ))
                }
            },
            cols: merged_cols,
        };
        // Fold explicit JOIN ... ON into WHERE conjuncts (nested loop).
        let mut selection_src = sel.selection.clone();
        for j in &sel.joins {
            selection_src = Some(match selection_src {
                None => j.on.clone(),
                Some(w) => Expr::binary(BinOp::And, w, j.on.clone()),
            });
        }
        from.extend(extra_tables);
        let mut projections = Vec::new();
        for p in &sel.projections {
            match p {
                SelectItem::Wildcard => {
                    for (name, _, _) in &t.cols {
                        projections.push(SelectItem::Expr {
                            expr: self.dec_expr(&t, name)?,
                            alias: Some(name.clone()),
                        });
                    }
                }
                SelectItem::Expr { expr, alias } => projections.push(SelectItem::Expr {
                    expr: self.rw_expr(&t, expr)?,
                    alias: alias.clone(),
                }),
            }
        }
        let selection = selection_src
            .as_ref()
            .map(|w| self.rw_expr(&t, w))
            .transpose()?;
        let group_by = sel
            .group_by
            .iter()
            .map(|g| self.rw_expr(&t, g))
            .collect::<Result<_, _>>()?;
        let having = sel
            .having
            .as_ref()
            .map(|h| self.rw_expr(&t, h))
            .transpose()?;
        let order_by = sel
            .order_by
            .iter()
            .map(|ob| {
                Ok(OrderBy {
                    expr: self.rw_expr(&t, &ob.expr)?,
                    asc: ob.asc,
                })
            })
            .collect::<Result<_, ProxyError>>()?;
        let stmt = Select {
            distinct: sel.distinct,
            projections,
            from,
            joins: Vec::new(),
            selection,
            group_by,
            having,
            order_by,
            limit: sel.limit,
        };
        Ok(self.engine.execute(&Stmt::Select(stmt))?)
    }

    fn update(&self, upd: &Update) -> Result<QueryResult, ProxyError> {
        let t = self
            .tables
            .read()
            .get(&upd.table.to_lowercase())
            .cloned()
            .ok_or_else(|| ProxyError::Schema(format!("unknown table {}", upd.table)))?;
        // Decrypt-modify-reencrypt per row, in the proxy (the paper's
        // "re-encrypting the result"): select rowids via a decrypting
        // scan, then set fresh ciphertexts per row.
        let selection = upd
            .selection
            .as_ref()
            .map(|w| self.rw_expr(&t, w))
            .transpose()?;
        // Read current values of updated columns.
        let mut read_proj = Vec::new();
        for (name, _, _) in &t.cols {
            read_proj.push(SelectItem::Expr {
                expr: self.dec_expr(&t, name)?,
                alias: Some(name.clone()),
            });
        }
        let rows = self.engine.execute(&Stmt::Select(Select {
            projections: read_proj,
            from: vec![TableRef {
                name: t.anon.clone(),
                alias: None,
            }],
            selection: selection.clone(),
            ..Default::default()
        }))?;
        let QueryResult::Rows { rows, .. } = rows else {
            return Ok(QueryResult::Affected(0));
        };
        let n = rows.len();
        // Apply each SET by name, re-encrypting whole-row updates keyed on
        // the (decrypted) full row equality — sufficient for benchmarks
        // where updates pin unique keys.
        let mut sets = Vec::new();
        for (col, e) in &upd.sets {
            let (_, anon, _) = t
                .col(col)
                .ok_or_else(|| ProxyError::Schema(format!("unknown column {col}")))?;
            // Evaluate the new value per row below; for constants it is
            // row-independent.
            let v = match crate::proxy::const_fold(e) {
                Ok(v) => v,
                Err(_) => {
                    // Column-referencing SET (e.g. increment): rewrite as a
                    // decrypting expression evaluated by the server, then
                    // re-encrypted... which RND cannot do server-side; the
                    // strawman does it per-row in the proxy.
                    return self.update_per_row(&t, upd, rows);
                }
            };
            let (ct, iv) = self.encrypt(&v)?;
            sets.push((format!("{anon}_ct"), lit(ct)));
            sets.push((format!("{anon}_iv"), lit(iv)));
        }
        self.engine.execute(&Stmt::Update(Update {
            table: t.anon.clone(),
            sets,
            selection,
        }))?;
        Ok(QueryResult::Affected(n))
    }

    fn update_per_row(
        &self,
        t: &StrawTable,
        upd: &Update,
        rows: Vec<Vec<Value>>,
    ) -> Result<QueryResult, ProxyError> {
        // Recompute each row in the proxy and write it back keyed by the
        // full old row (adequate for unique-keyed benchmark updates).
        let names: Vec<String> = t.cols.iter().map(|(n, _, _)| n.clone()).collect();
        for row in &rows {
            let map: HashMap<String, Value> = names.iter().cloned().zip(row.clone()).collect();
            let mut sets = Vec::new();
            for (col, e) in &upd.sets {
                let new_v = eval_simple(e, &map)?;
                let (_, anon, _) = t
                    .col(col)
                    .ok_or_else(|| ProxyError::Schema(format!("unknown column {col}")))?;
                let (ct, iv) = self.encrypt(&new_v)?;
                sets.push((format!("{anon}_ct"), lit(ct)));
                sets.push((format!("{anon}_iv"), lit(iv)));
            }
            // Re-select the row by all column equality.
            let mut pred: Option<Expr> = None;
            for (name, v) in names.iter().zip(row) {
                let cmp = Expr::binary(BinOp::Eq, self.dec_expr(t, name)?, lit(v.clone()));
                pred = Some(match pred {
                    None => cmp,
                    Some(p) => Expr::binary(BinOp::And, p, cmp),
                });
            }
            self.engine.execute(&Stmt::Update(Update {
                table: t.anon.clone(),
                sets,
                selection: pred,
            }))?;
        }
        Ok(QueryResult::Affected(rows.len()))
    }

    fn delete(&self, del: &Delete) -> Result<QueryResult, ProxyError> {
        let t = self
            .tables
            .read()
            .get(&del.table.to_lowercase())
            .cloned()
            .ok_or_else(|| ProxyError::Schema(format!("unknown table {}", del.table)))?;
        let selection = del
            .selection
            .as_ref()
            .map(|w| self.rw_expr(&t, w))
            .transpose()?;
        Ok(self.engine.execute(&Stmt::Delete(Delete {
            table: t.anon.clone(),
            selection,
        }))?)
    }
}

fn lit(v: Value) -> Expr {
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Str(s) => Literal::Str(s),
        Value::Bytes(b) => Literal::Bytes(b),
    })
}

fn straw_dec(args: &[Value]) -> Result<Vec<u8>, EngineError> {
    let key = args
        .first()
        .and_then(Value::as_bytes)
        .ok_or_else(|| EngineError::Udf("STRAW_DEC: key".into()))?;
    let ct = args
        .get(1)
        .and_then(Value::as_bytes)
        .ok_or_else(|| EngineError::Udf("STRAW_DEC: ciphertext".into()))?;
    let iv = args
        .get(2)
        .and_then(Value::as_bytes)
        .ok_or_else(|| EngineError::Udf("STRAW_DEC: iv".into()))?;
    let mut k = [0u8; 16];
    k.copy_from_slice(&key[..16]);
    cbc_decrypt(&Aes::new_128(&k), iv, ct)
        .ok_or_else(|| EngineError::Udf("STRAW_DEC: bad ciphertext".into()))
}

/// Evaluates an expression over a decrypted row map (strawman updates).
fn eval_simple(e: &Expr, row: &HashMap<String, Value>) -> Result<Value, ProxyError> {
    match e {
        Expr::Column(ColumnRef { column, .. }) => row
            .get(&column.to_lowercase())
            .cloned()
            .ok_or_else(|| ProxyError::Schema(format!("unknown column {column}"))),
        Expr::Literal(_) => crate::proxy::const_fold(e),
        Expr::Binary { op, left, right } if op.is_arithmetic() => {
            let (Value::Int(a), Value::Int(b)) =
                (eval_simple(left, row)?, eval_simple(right, row)?)
            else {
                return Err(ProxyError::Crypto("strawman arithmetic on non-int".into()));
            };
            Ok(Value::Int(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b.max(1),
                BinOp::Mod => a % b.max(1),
                _ => unreachable!(),
            }))
        }
        other => Err(ProxyError::NeedsPlaintext(format!(
            "strawman SET expression: {other}"
        ))),
    }
}
