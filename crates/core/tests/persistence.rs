//! Proxy-level durability: kill the proxy, reopen from the WAL
//! directory, and check that ciphertext state, onion levels, join
//! groups, staleness bits, and the multi-principal key graph all
//! survive the restart.

use cryptdb_core::proxy::{EncryptionPolicy, Proxy, ProxyConfig};
use cryptdb_core::SecLevel;
use cryptdb_engine::{Value, WalConfig};
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryptdb-core-wal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> ProxyConfig {
    ProxyConfig {
        paillier_bits: 256,
        ..Default::default()
    }
}

fn open(dir: &Path, cfg: ProxyConfig) -> Proxy {
    let (p, _) = Proxy::open_persistent(dir, [7u8; 32], cfg, WalConfig::default()).unwrap();
    p
}

#[test]
fn restart_preserves_data_and_onion_levels() {
    let dir = tmpdir("levels");
    {
        let p = open(&dir, small_cfg());
        p.execute("CREATE TABLE emp (id int, salary int, name text)")
            .unwrap();
        p.execute(
            "INSERT INTO emp (id, salary, name) VALUES \
             (1, 100, 'alice'), (2, 250, 'bob'), (3, 80, 'carol')",
        )
        .unwrap();
        // Exposes DET on id and OPE on salary.
        p.execute("SELECT name FROM emp WHERE id = 2").unwrap();
        p.execute("SELECT name FROM emp WHERE salary > 90 ORDER BY salary LIMIT 2")
            .unwrap();
    }
    let p = open(&dir, small_cfg());
    // Data round-trips through recovered ciphertext + recovered keys.
    let r = p.execute("SELECT name FROM emp WHERE id = 2").unwrap();
    assert_eq!(r.rows()[0][0], Value::Str("bob".into()));
    let r = p
        .execute("SELECT name FROM emp ORDER BY salary LIMIT 1")
        .unwrap();
    assert_eq!(r.rows()[0][0], Value::Str("carol".into()));
    // Onion levels survived: the recovered schema knows id/salary are
    // already exposed (no re-adjustment executes; MinEnc reflects it).
    let min = |c: &str| p.with_schema(|s| s.table("emp").unwrap().column(c).unwrap().min_enc());
    assert_eq!(min("id"), SecLevel::Det);
    assert_eq!(min("salary"), SecLevel::Ope);
    // New inserts get fresh, non-colliding rids.
    p.execute("INSERT INTO emp (id, salary, name) VALUES (4, 500, 'dave')")
        .unwrap();
    let r = p.execute("SELECT COUNT(id) FROM emp").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_preserves_stale_bit_and_refresh_works() {
    let dir = tmpdir("stale");
    {
        let p = open(&dir, small_cfg());
        p.execute("CREATE TABLE acct (id int, balance int)")
            .unwrap();
        p.execute("INSERT INTO acct (id, balance) VALUES (1, 10), (2, 20)")
            .unwrap();
        // HOM increment → balance goes stale.
        p.execute("UPDATE acct SET balance = balance + 5 WHERE id = 1")
            .unwrap();
        assert!(p.with_schema(|s| s.table("acct").unwrap().column("balance").unwrap().stale));
    }
    let p = open(&dir, small_cfg());
    assert!(
        p.with_schema(|s| s.table("acct").unwrap().column("balance").unwrap().stale),
        "staleness must survive the restart"
    );
    // The recovered proxy can still refresh and serve comparisons.
    let r = p.execute("SELECT id FROM acct WHERE balance = 15").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    assert!(!p.with_schema(|s| s.table("acct").unwrap().column("balance").unwrap().stale));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_preserves_join_groups_and_drop_table() {
    let dir = tmpdir("join");
    {
        let p = open(&dir, small_cfg());
        p.execute(
            "CREATE TABLE a (x int); CREATE TABLE b (y int); CREATE TABLE gone (z int); \
             INSERT INTO a (x) VALUES (1), (2); INSERT INTO b (y) VALUES (2), (3)",
        )
        .unwrap();
        // Equi-join merges the join groups of a.x and b.y.
        p.execute("SELECT x FROM a, b WHERE a.x = b.y").unwrap();
        p.execute("DROP TABLE gone").unwrap();
    }
    let p = open(&dir, small_cfg());
    let (oa, ob) = p.with_schema(|s| {
        (
            s.table("a")
                .unwrap()
                .column("x")
                .unwrap()
                .join_owner
                .clone(),
            s.table("b")
                .unwrap()
                .column("y")
                .unwrap()
                .join_owner
                .clone(),
        )
    });
    assert_eq!(oa, ob, "merged join group must survive the restart");
    // The merged group still joins without re-adjustment.
    let r = p.execute("SELECT x FROM a, b WHERE a.x = b.y").unwrap();
    assert_eq!(r.rows().len(), 1);
    assert!(p.execute("SELECT z FROM gone").is_err(), "drop survived");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_preserves_multiprincipal_key_graph() {
    let dir = tmpdir("mp");
    let cfg = ProxyConfig {
        paillier_bits: 256,
        policy: EncryptionPolicy::AnnotatedOnly,
        ..Default::default()
    };
    {
        let p = open(&dir, cfg.clone());
        p.execute(
            "PRINCTYPE physical_user EXTERNAL; \
             PRINCTYPE user, msg; \
             CREATE TABLE privmsgs ( msgid int, \
               msgtext text ENC FOR (msgid msg) ); \
             CREATE TABLE privmsgs_to ( msgid int, rcpt_id int, \
               (rcpt_id user) SPEAKS FOR (msgid msg) ); \
             CREATE TABLE users ( userid int, username varchar(255), \
               (username physical_user) SPEAKS FOR (userid user) )",
        )
        .unwrap();
        p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('alice', 'pw')")
            .unwrap();
        p.execute("INSERT INTO users (userid, username) VALUES (1, 'alice')")
            .unwrap();
        p.execute("INSERT INTO privmsgs (msgid, msgtext) VALUES (5, 'attack at dawn')")
            .unwrap();
        p.execute("INSERT INTO privmsgs_to (msgid, rcpt_id) VALUES (5, 1)")
            .unwrap();
    }
    // Restart: no one is logged in, so the proxy can only hand back the
    // raw ciphertext (the key chain is unreachable)...
    let p = open(&dir, cfg);
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert!(
        matches!(r.rows()[0][0], Value::Bytes(_)),
        "without a login the recovered proxy must not decrypt"
    );
    // ...until Alice logs back in and the wrapped key chain unlocks.
    p.login("alice", "pw").unwrap();
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert_eq!(r.rows()[0][0], Value::Str("attack at dawn".into()));
    let _ = fs::remove_dir_all(&dir);
}
