//! Concurrent-consistency e2e: N threads hammer one shared `Proxy` with
//! interleaved INSERT/SELECT/SUM/increment traffic, then the decrypted
//! full-table state is compared against a serial oracle replay of the
//! same per-thread traces. Any divergence is a real isolation bug in
//! the proxy's shared state (key caches, memos, blinding pool, schema
//! locks) — the traces commute across threads by construction.

use cryptdb_core::proxy::{Proxy, ProxyConfig};
use cryptdb_engine::{Engine, Value};
use std::sync::Arc;

const THREADS: usize = 4;
const ROWS_PER_THREAD: i64 = 12;

fn test_proxy() -> Arc<Proxy> {
    let cfg = ProxyConfig {
        paillier_bits: 256, // Small key: this is a correctness test.
        ..Default::default()
    };
    Arc::new(Proxy::new(Arc::new(Engine::new()), [3u8; 32], cfg))
}

fn setup(proxy: &Proxy) {
    proxy
        .execute("CREATE TABLE ledger (id int, owner text, amount int, memo text)")
        .unwrap();
    // Pre-adjust the onions the trace needs (equality on id/owner, SUM
    // on amount) so no thread races an onion adjustment mid-run.
    proxy
        .execute("INSERT INTO ledger (id, owner, amount, memo) VALUES (0, 'seed', 1, 'seed row')")
        .unwrap();
    proxy
        .execute("SELECT memo FROM ledger WHERE id = 0")
        .unwrap();
    proxy
        .execute("SELECT SUM(amount) FROM ledger WHERE owner = 'seed'")
        .unwrap();
    proxy
        .execute("UPDATE ledger SET amount = amount + 1 WHERE id = 0")
        .unwrap();
}

/// Thread `t`'s trace: inserts into its own id partition, reads and
/// sums freely, increments and deletes only rows it owns — all
/// operations commute across threads, so the final state is
/// schedule-independent.
fn thread_trace(t: usize) -> Vec<String> {
    let base = 1000 * (t as i64 + 1);
    let mut stmts = Vec::new();
    for i in 0..ROWS_PER_THREAD {
        let id = base + i;
        stmts.push(format!(
            "INSERT INTO ledger (id, owner, amount, memo) VALUES \
             ({id}, 'thread{t}', {}, 'entry {id}')",
            (i * 7 + t as i64) % 100
        ));
        stmts.push(format!("SELECT memo, amount FROM ledger WHERE id = {id}"));
        stmts.push(format!(
            "SELECT SUM(amount) FROM ledger WHERE owner = 'thread{t}'"
        ));
        if i % 3 == 0 {
            stmts.push(format!(
                "UPDATE ledger SET amount = amount + {} WHERE id = {id}",
                t + 2
            ));
        }
        if i % 4 == 1 {
            // Deleting a row just inserted exercises the shard write
            // path for removals without breaking commutativity (each
            // thread only ever deletes its own ids).
            stmts.push(format!("DELETE FROM ledger WHERE id = {id}"));
        }
    }
    stmts
}

/// How many of a thread's rows its own trace deletes again.
fn deleted_per_thread() -> i64 {
    (0..ROWS_PER_THREAD).filter(|i| i % 4 == 1).count() as i64
}

fn dump(proxy: &Proxy) -> String {
    proxy
        .execute("SELECT id, owner, amount, memo FROM ledger")
        .unwrap()
        .canonical_text()
}

#[test]
fn interleaved_threads_match_serial_oracle() {
    // Concurrent run.
    let concurrent = test_proxy();
    setup(&concurrent);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let proxy = concurrent.clone();
            scope.spawn(move || {
                for stmt in thread_trace(t) {
                    proxy
                        .execute(&stmt)
                        .unwrap_or_else(|e| panic!("thread {t}: {e}: {stmt}"));
                }
            });
        }
    });

    // Serial oracle: identical traces, one thread at a time.
    let oracle = test_proxy();
    setup(&oracle);
    for t in 0..THREADS {
        for stmt in thread_trace(t) {
            oracle.execute(&stmt).unwrap();
        }
    }

    let got = dump(&concurrent);
    let want = dump(&oracle);
    assert_eq!(
        got.lines().count(),
        (THREADS as i64 * (ROWS_PER_THREAD - deleted_per_thread()) + 1) as usize,
        "row count after concurrent run"
    );
    assert_eq!(got, want, "concurrent state diverged from serial oracle");

    // The SUM each thread observed at the end must also agree now that
    // the dust has settled.
    for t in 0..THREADS {
        let q = format!("SELECT SUM(amount) FROM ledger WHERE owner = 'thread{t}'");
        let a = concurrent.execute(&q).unwrap();
        let b = oracle.execute(&q).unwrap();
        assert_eq!(
            a.scalar().and_then(Value::as_int),
            b.scalar().and_then(Value::as_int),
            "thread {t} sum"
        );
    }
}

#[test]
fn concurrent_eq_memo_stays_bounded_and_consistent() {
    // Many threads spraying distinct equality constants must not grow
    // the memo past its bound, and repeated constants must keep
    // decrypting correctly afterwards.
    let proxy = test_proxy();
    proxy
        .execute("CREATE TABLE tags (id int, label text)")
        .unwrap();
    proxy
        .execute("INSERT INTO tags (id, label) VALUES (1, 'hot')")
        .unwrap();
    proxy
        .execute("SELECT id FROM tags WHERE label = 'hot'")
        .unwrap();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let proxy = proxy.clone();
            scope.spawn(move || {
                for i in 0..200 {
                    let q = format!("SELECT id FROM tags WHERE label = 'probe-{t}-{i}'");
                    proxy.execute(&q).unwrap();
                }
            });
        }
    });
    assert!(
        proxy.eq_memo_len() <= 30_016,
        "eq memo grew to {}",
        proxy.eq_memo_len()
    );
    let r = proxy
        .execute("SELECT id FROM tags WHERE label = 'hot'")
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0][0], Value::Int(1));
}
