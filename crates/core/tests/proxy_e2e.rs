//! End-to-end tests: full CryptDB pipeline over the embedded engine.

use cryptdb_core::proxy::{EncryptionPolicy, Proxy, ProxyConfig, ProxyMode};
use cryptdb_core::{ProxyError, SecLevel};
use cryptdb_engine::{Engine, QueryResult, Value};
use std::sync::Arc;

fn proxy() -> Proxy {
    let cfg = ProxyConfig {
        paillier_bits: 256,
        ..Default::default()
    };
    Proxy::new(Arc::new(Engine::new()), [42u8; 32], cfg)
}

fn seeded(p: &Proxy) {
    p.execute(
        "CREATE TABLE employees (id int, name text, dept text, salary int); \
         INSERT INTO employees (id, name, dept, salary) VALUES \
           (23, 'Alice', 'sales', 60000), \
           (2, 'Bob', 'sales', 55000), \
           (3, 'Carol', 'eng', 80000), \
           (4, 'Dave', 'eng', 75000)",
    )
    .unwrap();
}

fn strs(r: &QueryResult) -> Vec<String> {
    r.rows()
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect()
}

#[test]
fn paper_example_equality_select() {
    // §3.3's running example: SELECT ID FROM Employees WHERE Name = 'Alice'.
    let p = proxy();
    seeded(&p);
    let r = p
        .execute("SELECT id FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(23)]]);
    // Follow-up equality on the same column: no further adjustment needed;
    // and COUNT works over DET.
    let r = p
        .execute("SELECT COUNT(*) FROM employees WHERE name = 'Bob'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn server_never_sees_plaintext() {
    let p = proxy();
    seeded(&p);
    // Check every value stored at the server: no plaintext strings, no
    // plaintext salaries.
    let engine = p.engine();
    for t in engine.table_names() {
        if t.starts_with("cryptdb_") {
            continue;
        }
        engine
            .with_table(&t, |tab| {
                for (_, row) in tab.iter() {
                    for v in row {
                        match v {
                            Value::Str(s) => panic!("plaintext string at server: {s}"),
                            Value::Int(i) => {
                                assert!(
                                    ![23i64, 2, 3, 4, 60000, 55000, 80000, 75000].contains(i)
                                        || *i <= 4, // rid values are small ints
                                    "plaintext int at server: {i}"
                                );
                            }
                            _ => {}
                        }
                    }
                }
            })
            .unwrap();
    }
    // Table and column names are anonymised.
    assert!(engine.table_names().iter().any(|t| t.starts_with("table")));
    assert!(!engine.table_names().contains(&"employees".to_string()));
}

#[test]
fn onion_levels_adjust_on_demand() {
    let p = proxy();
    seeded(&p);
    let level =
        |col: &str| p.with_schema(|s| s.table("employees").unwrap().column(col).unwrap().min_enc());
    // Initially everything sits at RND.
    assert_eq!(level("name"), SecLevel::Rnd);
    assert_eq!(level("salary"), SecLevel::Rnd);
    // An equality predicate lowers Eq to DET.
    p.execute("SELECT id FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(level("name"), SecLevel::Det);
    // A range predicate lowers Ord to OPE.
    p.execute("SELECT id FROM employees WHERE salary > 60000")
        .unwrap();
    assert_eq!(level("salary"), SecLevel::Ope);
    // Projection-only columns stay at RND.
    assert_eq!(level("dept"), SecLevel::Rnd);
}

#[test]
fn range_order_and_aggregates() {
    let p = proxy();
    seeded(&p);
    let r = p
        .execute("SELECT name FROM employees WHERE salary >= 75000 ORDER BY salary DESC LIMIT 2")
        .unwrap();
    assert_eq!(strs(&r), vec!["Carol", "Dave"]);
    let r = p.execute("SELECT SUM(salary) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(270_000)));
    let r = p.execute("SELECT AVG(salary) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(67_500)));
    let r = p.execute("SELECT MIN(salary) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(55_000)));
    let r = p.execute("SELECT MAX(salary) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(80_000)));
    let r = p
        .execute("SELECT COUNT(*) FROM employees WHERE salary BETWEEN 55000 AND 75000")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3)));
}

#[test]
fn in_proxy_sorting_keeps_ope_sealed() {
    let p = proxy();
    seeded(&p);
    // ORDER BY without LIMIT is sorted in the proxy (§3.5.1) — the Ord
    // onion must stay at RND.
    let r = p
        .execute("SELECT name FROM employees ORDER BY salary")
        .unwrap();
    assert_eq!(strs(&r), vec!["Bob", "Alice", "Dave", "Carol"]);
    let min_enc = p.with_schema(|s| {
        s.table("employees")
            .unwrap()
            .column("salary")
            .unwrap()
            .min_enc()
    });
    assert_eq!(min_enc, SecLevel::Rnd, "proxy sort must not expose OPE");
}

#[test]
fn group_by_and_distinct() {
    let p = proxy();
    seeded(&p);
    let r = p
        .execute("SELECT dept, COUNT(*) FROM employees GROUP BY dept ORDER BY dept")
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0][0], Value::Str("eng".into()));
    assert_eq!(r.rows()[0][1], Value::Int(2));
    let r = p
        .execute("SELECT DISTINCT dept FROM employees ORDER BY dept")
        .unwrap();
    assert_eq!(strs(&r), vec!["eng", "sales"]);
    let r = p
        .execute("SELECT dept, SUM(salary) FROM employees GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept")
        .unwrap();
    assert_eq!(r.rows()[0][1], Value::Int(155_000));
}

#[test]
fn equi_join_via_join_adj() {
    let p = proxy();
    seeded(&p);
    p.execute(
        "CREATE TABLE bonuses (emp_name text, amount int); \
         INSERT INTO bonuses (emp_name, amount) VALUES ('Alice', 500), ('Carol', 700)",
    )
    .unwrap();
    let r = p
        .execute(
            "SELECT employees.dept, bonuses.amount FROM employees \
             JOIN bonuses ON employees.name = bonuses.emp_name ORDER BY bonuses.amount",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0][0], Value::Str("sales".into()));
    assert_eq!(r.rows()[0][1], Value::Int(500));
    // Join again — steady state, no re-adjustment needed, same answer.
    let r2 = p
        .execute("SELECT COUNT(*) FROM employees JOIN bonuses ON employees.name = bonuses.emp_name")
        .unwrap();
    assert_eq!(r2.scalar(), Some(&Value::Int(2)));
    // Equality constants still work on the re-keyed column.
    let r3 = p
        .execute("SELECT amount FROM bonuses WHERE emp_name = 'Carol'")
        .unwrap();
    assert_eq!(r3.scalar(), Some(&Value::Int(700)));
}

#[test]
fn search_onion_serves_like() {
    let p = proxy();
    p.execute(
        "CREATE TABLE messages (id int, msg text); \
         INSERT INTO messages (id, msg) VALUES \
           (1, 'meet alice at noon'), \
           (2, 'nothing to see here'), \
           (3, 'Alice and bob talk')",
    )
    .unwrap();
    let r = p
        .execute("SELECT id FROM messages WHERE msg LIKE '%alice%' ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows().iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![Value::Int(1), Value::Int(3)]
    );
    // Word search, not substring: 'al' must not match.
    let r = p
        .execute("SELECT COUNT(*) FROM messages WHERE msg LIKE '%al%'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)));
}

#[test]
fn update_delete_insert_roundtrip() {
    let p = proxy();
    seeded(&p);
    p.execute("UPDATE employees SET salary = 90000 WHERE name = 'Carol'")
        .unwrap();
    let r = p
        .execute("SELECT salary FROM employees WHERE name = 'Carol'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(90_000)));
    let r = p
        .execute("DELETE FROM employees WHERE dept = 'sales'")
        .unwrap();
    assert_eq!(r, QueryResult::Affected(2));
    let r = p.execute("SELECT COUNT(*) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
}

#[test]
fn increment_update_uses_hom_and_staleness() {
    let p = proxy();
    seeded(&p);
    // Increment: server-side HOM multiplication (§3.3).
    p.execute("UPDATE employees SET salary = salary + 1000")
        .unwrap();
    // Projection is served from the Add onion.
    let r = p
        .execute("SELECT salary FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(61_000)));
    // A later comparison triggers the SELECT-then-UPDATE refresh.
    let r = p
        .execute("SELECT name FROM employees WHERE salary > 80000")
        .unwrap();
    assert_eq!(strs(&r), vec!["Carol"]);
    // And SUM still agrees.
    let r = p.execute("SELECT SUM(salary) FROM employees").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(274_000)));
}

#[test]
fn unsupported_computations_are_flagged() {
    let p = proxy();
    seeded(&p);
    // §6: computation and comparison on the same column.
    let err = p
        .execute("SELECT id FROM employees WHERE salary > id * 2 + 10")
        .unwrap_err();
    assert!(matches!(err, ProxyError::NeedsPlaintext(_)), "{err}");
    // §8.2: string manipulation over encrypted data.
    let err = p.execute("SELECT LOWER(name) FROM employees").unwrap_err();
    assert!(matches!(err, ProxyError::NeedsPlaintext(_)), "{err}");
    // LIKE with non-word pattern.
    let err = p
        .execute("SELECT id FROM employees WHERE name LIKE 'Al%ce'")
        .unwrap_err();
    assert!(matches!(err, ProxyError::NeedsPlaintext(_)), "{err}");
}

#[test]
fn min_level_floor_enforced() {
    let p = proxy();
    seeded(&p);
    // §3.5.1: credit-card style floor — never below DET.
    p.set_min_level("employees", "salary", SecLevel::Det)
        .unwrap();
    let err = p
        .execute("SELECT id FROM employees WHERE salary > 60000")
        .unwrap_err();
    assert!(matches!(err, ProxyError::PolicyViolation(_)), "{err}");
    // Equality (DET) is still fine.
    let r = p
        .execute("SELECT COUNT(*) FROM employees WHERE salary = 60000")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn nulls_pass_through() {
    let p = proxy();
    p.execute(
        "CREATE TABLE t (a int, b text); \
         INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    )
    .unwrap();
    let r = p.execute("SELECT b FROM t WHERE a = 2").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Null));
    let r = p.execute("SELECT a FROM t WHERE b IS NULL").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
    let r = p.execute("SELECT COUNT(b) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn explicit_policy_leaves_marked_columns_plain() {
    let cfg = ProxyConfig {
        paillier_bits: 256,
        policy: EncryptionPolicy::Explicit(
            [("notes".to_string(), vec!["body".to_string()])]
                .into_iter()
                .collect(),
        ),
        ..Default::default()
    };
    let p = Proxy::new(Arc::new(Engine::new()), [1u8; 32], cfg);
    p.execute(
        "CREATE TABLE notes (id int, body text); \
         INSERT INTO notes (id, body) VALUES (7, 'secret stuff')",
    )
    .unwrap();
    // id is plaintext at the server; body is encrypted.
    let anon = p.with_schema(|s| s.table("notes").unwrap().anon.clone());
    p.engine()
        .with_table(&anon, |t| {
            let (_, row) = t.iter().next().unwrap();
            assert!(row.iter().any(|v| v == &Value::Int(7)), "id stays plain");
            assert!(
                !row.iter()
                    .any(|v| matches!(v, Value::Str(s) if s.contains("secret"))),
                "body must be encrypted"
            );
        })
        .unwrap();
    let r = p.execute("SELECT body FROM notes WHERE id = 7").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Str("secret stuff".into())));
}

#[test]
fn passthrough_mode_is_transparent() {
    let cfg = ProxyConfig {
        mode: ProxyMode::Passthrough,
        paillier_bits: 256,
        ..Default::default()
    };
    let p = Proxy::new(Arc::new(Engine::new()), [1u8; 32], cfg);
    p.execute("CREATE TABLE t (a int)").unwrap();
    p.execute("INSERT INTO t (a) VALUES (5)").unwrap();
    let r = p.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(5)));
    // Passthrough stores plaintext (it measures proxy overhead only).
    p.engine()
        .with_table("t", |t| {
            assert_eq!(t.iter().next().unwrap().1[0], Value::Int(5));
        })
        .unwrap();
}

#[test]
fn implicit_join_from_comma_list() {
    let p = proxy();
    seeded(&p);
    p.execute(
        "CREATE TABLE depts (dname text, floor int); \
         INSERT INTO depts (dname, floor) VALUES ('sales', 1), ('eng', 3)",
    )
    .unwrap();
    let r = p
        .execute(
            "SELECT e.name, d.floor FROM employees e, depts d \
             WHERE e.dept = d.dname AND d.floor = 3 ORDER BY e.name",
        )
        .unwrap();
    assert_eq!(strs(&r), vec!["Carol", "Dave"]);
}

#[test]
fn select_star_decrypts_everything() {
    let p = proxy();
    seeded(&p);
    let r = p.execute("SELECT * FROM employees WHERE id = 23").unwrap();
    let QueryResult::Rows { columns, rows } = r else {
        panic!()
    };
    assert_eq!(columns, vec!["id", "name", "dept", "salary"]);
    assert_eq!(
        rows[0],
        vec![
            Value::Int(23),
            Value::Str("Alice".into()),
            Value::Str("sales".into()),
            Value::Int(60000)
        ]
    );
}

#[test]
fn in_list_predicate() {
    let p = proxy();
    seeded(&p);
    let r = p
        .execute("SELECT name FROM employees WHERE id IN (2, 3) ORDER BY name")
        .unwrap();
    assert_eq!(strs(&r), vec!["Bob", "Carol"]);
}

#[test]
fn equality_constants_after_join_rekeying() {
    // Regression: after a join re-keys a column's JOIN-ADJ tags, equality
    // constants for the *re-keyed* column must still match (its DET key
    // is unchanged; only the tag key moved to the join base).
    let p = proxy();
    seeded(&p);
    p.execute(
        "CREATE TABLE zbonus (emp_name text, amount int); \
         INSERT INTO zbonus (emp_name, amount) VALUES ('Alice', 500), ('Dave', 700)",
    )
    .unwrap();
    // employees < zbonus lexicographically, so zbonus.emp_name is re-keyed.
    let r = p
        .execute("SELECT COUNT(*) FROM employees JOIN zbonus ON employees.name = zbonus.emp_name")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
    // Equality on the re-keyed column.
    let r = p
        .execute("SELECT amount FROM zbonus WHERE emp_name = 'Dave'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(700)));
    // Equality on the base column too.
    let r = p
        .execute("SELECT salary FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(60000)));
    // And inserts into the re-keyed column still join correctly.
    p.execute("INSERT INTO zbonus (emp_name, amount) VALUES ('Bob', 900)")
        .unwrap();
    let r = p
        .execute("SELECT COUNT(*) FROM employees JOIN zbonus ON employees.name = zbonus.emp_name")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3)));
}

#[test]
fn concurrent_mixed_workload_does_not_deadlock() {
    // Regression: UPDATE once re-acquired the schema read lock while
    // holding it, deadlocking as soon as a writer queued (parking_lot
    // read locks are not reentrant).
    use std::sync::Arc as SArc;
    let p = SArc::new(proxy());
    seeded(&p);
    let mut handles = Vec::new();
    for t in 0..4 {
        let p = SArc::clone(&p);
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                match (t + i) % 3 {
                    0 => {
                        p.execute("SELECT salary FROM employees WHERE name = 'Alice'")
                            .unwrap();
                    }
                    1 => {
                        p.execute(&format!(
                            "UPDATE employees SET dept = 'd{i}' WHERE id = {}",
                            [23, 2, 3, 4][i % 4]
                        ))
                        .unwrap();
                    }
                    _ => {
                        p.execute("SELECT COUNT(*) FROM employees WHERE salary > 60000")
                            .unwrap();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn seal_column_restores_rnd() {
    // §3.5.1 onion re-encryption: after an infrequent low-layer query,
    // the proxy can re-seal the column back to RND.
    let p = proxy();
    seeded(&p);
    p.execute("SELECT id FROM employees WHERE salary > 60000")
        .unwrap();
    let level =
        |col: &str| p.with_schema(|s| s.table("employees").unwrap().column(col).unwrap().min_enc());
    assert_eq!(level("salary"), SecLevel::Ope);
    let sealed = p.seal_column("employees", "salary").unwrap();
    assert_eq!(sealed, 4);
    assert_eq!(level("salary"), SecLevel::Rnd);
    // The data still answers queries correctly (peeling again on demand).
    let r = p
        .execute("SELECT name FROM employees WHERE salary > 60000 ORDER BY salary LIMIT 2")
        .unwrap();
    assert_eq!(strs(&r), vec!["Dave", "Carol"]);
    assert_eq!(level("salary"), SecLevel::Ope);
    // Sealing an equality-exposed text column works too.
    p.execute("SELECT id FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(level("name"), SecLevel::Det);
    p.seal_column("employees", "name").unwrap();
    assert_eq!(level("name"), SecLevel::Rnd);
    let r = p
        .execute("SELECT id FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(23)));
}

#[test]
fn blinding_pool_refills_in_background_and_shuts_down_cleanly() {
    // §3.5.2 via the crypto runtime: draining the warm pool below its
    // low-water mark must trigger a *background* refill — no INSERT ever
    // generates a blinding factor inline — and dropping the proxy must
    // join the runtime threads without hanging (the test completing is
    // the shutdown assertion).
    let cfg = ProxyConfig {
        paillier_bits: 256,
        hom_low_water: 4,
        hom_high_water: 12,
        runtime_threads: 2,
        ..Default::default()
    };
    let p = Proxy::new(Arc::new(Engine::new()), [42u8; 32], cfg);
    p.execute("CREATE TABLE t (a int)").unwrap();
    p.precompute_hom(24);
    assert_eq!(p.hom_pool_len(), 24);
    // 22 single-row inserts each take one blinding factor: 24 → 2,
    // crossing the low-water mark (and bottoming out) on the way.
    for i in 0..22 {
        p.execute(&format!("INSERT INTO t (a) VALUES ({i})"))
            .unwrap();
    }
    p.hom_pool_wait_ready();
    let stats = p.hom_pool_stats();
    assert!(stats.async_refills >= 1, "watermark refill must have run");
    assert_eq!(stats.sync_refills, 0, "no INSERT may generate inline");
    assert!(
        p.hom_pool_len() >= 4,
        "refill restored at least the low-water level"
    );
    // SUM exercises the pooled batch decryption path end to end.
    let r = p.execute("SELECT SUM(a) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int((0..22).sum())));
    drop(p);
}

#[test]
fn warm_ope_prewalks_the_column_cache() {
    let p = proxy();
    p.execute("CREATE TABLE m (v int)").unwrap();
    let values: Vec<i64> = (0..48).map(|i| i * 37 - 100).collect();
    // Warm on the runtime pool and wait for the walk to finish.
    let warmed = p.warm_ope("m", "v", &values).unwrap().join();
    assert_eq!(warmed, values.len());
    // The warmed values insert and range-query correctly (hits go
    // through the same per-column cache the warmer populated).
    for v in &values[..8] {
        p.execute(&format!("INSERT INTO m (v) VALUES ({v})"))
            .unwrap();
    }
    let r = p
        .execute("SELECT v FROM m WHERE v > -100 ORDER BY v LIMIT 3")
        .unwrap();
    assert_eq!(
        r.rows()
            .iter()
            .map(|row| row[0].clone())
            .collect::<Vec<_>>(),
        vec![Value::Int(-63), Value::Int(-26), Value::Int(11)]
    );
    // Unknown columns are reported, not warmed.
    assert!(p.warm_ope("m", "nope", &values).is_err());
}

#[test]
fn training_emits_hot_values_and_warms_ope_cache() {
    // Train on one proxy (dev), warm a second proxy (prod, same master
    // key) from the report: the trained hot INSERT literals must land in
    // the production OPE cache *before* any query touches the column,
    // and inserting a hot value afterwards must be served from cache.
    let trainer = proxy();
    let mut trace: Vec<String> =
        vec!["CREATE TABLE orders (id int, qty int, note text)".to_string()];
    // Hot values 7 and 42 (many inserts), cold values once each.
    for i in 0..6 {
        trace.push(format!(
            "INSERT INTO orders (id, qty, note) VALUES ({i}, 7, 'x')"
        ));
        trace.push(format!(
            "INSERT INTO orders (id, qty, note) VALUES ({}, 42, 'y')",
            100 + i
        ));
    }
    trace.push("INSERT INTO orders (id, qty, note) VALUES (900, 1234, 'z')".to_string());
    let trace_refs: Vec<&str> = trace.iter().map(String::as_str).collect();
    let report = trainer.train(&trace_refs).unwrap();
    let qty_hot = report
        .hot_values
        .get(&("orders".to_string(), "qty".to_string()))
        .expect("trainer must emit a hot set for orders.qty");
    // Most-frequent first: 7 and 42 (6 each, tie broken by value) ahead
    // of the one-off 1234.
    assert_eq!(&qty_hot[..2], &[7, 42]);
    assert!(qty_hot.contains(&1234));
    assert!(report
        .hot_values
        .contains_key(&("orders".to_string(), "id".to_string())));

    // Fresh proxy, same master key: warm from the report.
    let prod = proxy();
    prod.execute("CREATE TABLE orders (id int, qty int, note text)")
        .unwrap();
    assert_eq!(prod.ope_cached_results("orders", "qty").unwrap(), 0);
    let warmed = prod.warm_ope_from_training(&report).unwrap();
    assert!(warmed > 0, "warming must walk at least the qty hot set");
    let cached_after_warm = prod.ope_cached_results("orders", "qty").unwrap();
    assert!(
        cached_after_warm >= qty_hot.len(),
        "hot set not in cache: {cached_after_warm} < {}",
        qty_hot.len()
    );

    // An INSERT of a hot value must *hit* the cache: the memoised result
    // count stays flat (a miss would add a new entry).
    prod.execute("INSERT INTO orders (id, qty, note) VALUES (1, 7, 'hot')")
        .unwrap();
    assert_eq!(
        prod.ope_cached_results("orders", "qty").unwrap(),
        cached_after_warm,
        "post-training warm must make hot INSERTs cache hits"
    );
    // Sanity: the warmed cache produces the same ciphertext ordering.
    let r = prod
        .execute("SELECT id FROM orders WHERE qty > 5 ORDER BY qty")
        .unwrap();
    assert_eq!(r.rows().len(), 1);
}
