//! Multi-principal end-to-end tests (§4, §5): key chaining, offline
//! delivery, conditional delegation, revocation, compromise containment.

use cryptdb_core::proxy::{EncryptionPolicy, Proxy, ProxyConfig};
use cryptdb_core::ProxyError;
use cryptdb_engine::{Engine, Value};
use std::sync::Arc;

fn mp_proxy() -> Proxy {
    let cfg = ProxyConfig {
        paillier_bits: 256,
        policy: EncryptionPolicy::AnnotatedOnly,
        ..Default::default()
    };
    Proxy::new(Arc::new(Engine::new()), [9u8; 32], cfg)
}

/// The paper's Figure 4 schema: private messages in phpBB.
fn phpbb_schema(p: &Proxy) {
    p.execute(
        "PRINCTYPE physical_user EXTERNAL; \
         PRINCTYPE user, msg; \
         CREATE TABLE privmsgs ( msgid int, \
           subject varchar(255) ENC FOR (msgid msg), \
           msgtext text ENC FOR (msgid msg) ); \
         CREATE TABLE privmsgs_to ( msgid int, rcpt_id int, sender_id int, \
           (sender_id user) SPEAKS FOR (msgid msg), \
           (rcpt_id user) SPEAKS FOR (msgid msg) ); \
         CREATE TABLE users ( userid int, username varchar(255), \
           (username physical_user) SPEAKS FOR (userid user) )",
    )
    .unwrap();
}

/// Runs the paper's message flow: Alice (1) and Bob (2) register; Bob
/// sends message 5 to Alice while she is offline.
fn send_message_flow(p: &Proxy) {
    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('alice', 'alice-pw')")
        .unwrap();
    p.execute("INSERT INTO users (userid, username) VALUES (1, 'alice')")
        .unwrap();
    p.execute("DELETE FROM cryptdb_active WHERE username = 'alice'")
        .unwrap();

    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('bob', 'bob-pw')")
        .unwrap();
    p.execute("INSERT INTO users (userid, username) VALUES (2, 'bob')")
        .unwrap();
    // Bob sends message 5 to Alice (userid 1) while Alice is offline: her
    // copy of the msg key is wrapped under her *public* key (§4.2).
    p.execute(
        "INSERT INTO privmsgs (msgid, subject, msgtext) \
         VALUES (5, 'secret subject', 'attack at dawn')",
    )
    .unwrap();
    p.execute("INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")
        .unwrap();
    p.execute("DELETE FROM cryptdb_active WHERE username = 'bob'")
        .unwrap();
}

#[test]
fn recipient_reads_message_after_login() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    // Alice logs in later and follows the chain password → physical_user
    // → user 1 → msg 5 (the last hop sealed to her public key).
    p.login("alice", "alice-pw").unwrap();
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Str("attack at dawn".into())));
}

#[test]
fn sender_keeps_access() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    p.login("bob", "bob-pw").unwrap();
    let r = p
        .execute("SELECT subject FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Str("secret subject".into())));
}

#[test]
fn logged_out_users_data_is_ciphertext() {
    // Threat 2 (§2.2): with no one logged in, a fully compromised
    // proxy+DBMS can only produce ciphertext for the message.
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    match r.scalar() {
        Some(Value::Bytes(_)) => {} // Undecryptable ciphertext.
        other => panic!("expected ciphertext for logged-out users, got {other:?}"),
    }
}

#[test]
fn wrong_password_rejected() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    let err = p.login("alice", "wrong").unwrap_err();
    assert!(matches!(err, ProxyError::KeyUnavailable(_)), "{err}");
}

#[test]
fn unrelated_user_cannot_read() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('mallory', 'm-pw')")
        .unwrap();
    p.execute("INSERT INTO users (userid, username) VALUES (3, 'mallory')")
        .unwrap();
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert!(
        matches!(r.scalar(), Some(Value::Bytes(_))),
        "mallory must see ciphertext"
    );
}

#[test]
fn conditional_speaks_for_figure5() {
    // Figure 5: group permissions gated on optionid = 20.
    let p = mp_proxy();
    p.execute(
        "PRINCTYPE physical_user EXTERNAL; \
         PRINCTYPE user, group_p, forum_post; \
         CREATE TABLE users ( userid int, username varchar(255), \
           (username physical_user) SPEAKS FOR (userid user) ); \
         CREATE TABLE usergroup ( userid int, groupid int, \
           (userid user) SPEAKS FOR (groupid group_p) ); \
         CREATE TABLE aclgroups ( groupid int, forumid int, optionid int, \
           (groupid group_p) SPEAKS FOR (forumid forum_post) IF optionid = 20 ); \
         CREATE TABLE posts ( postid int, forumid int, \
           post text ENC FOR (forumid forum_post) )",
    )
    .unwrap();
    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('admin', 'a-pw')")
        .unwrap();
    p.execute("INSERT INTO users (userid, username) VALUES (10, 'admin')")
        .unwrap();
    p.execute("INSERT INTO usergroup (userid, groupid) VALUES (10, 100)")
        .unwrap();
    // Group 100 may read forum 7 (optionid 20) but only sees the name of
    // forum 8 (optionid 14 — not a forum_post grant).
    p.execute("INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (100, 7, 20)")
        .unwrap();
    p.execute("INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (100, 8, 14)")
        .unwrap();
    p.execute("INSERT INTO posts (postid, forumid, post) VALUES (1, 7, 'hello forum 7')")
        .unwrap();
    p.execute("INSERT INTO posts (postid, forumid, post) VALUES (2, 8, 'hidden forum 8')")
        .unwrap();
    p.logout("admin");

    p.login("admin", "a-pw").unwrap();
    let r = p
        .execute("SELECT post FROM posts WHERE postid = 1")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Str("hello forum 7".into())));
    let r = p
        .execute("SELECT post FROM posts WHERE postid = 2")
        .unwrap();
    assert!(
        matches!(r.scalar(), Some(Value::Bytes(_))),
        "optionid 14 must not grant forum_post access"
    );
}

#[test]
fn hotcrp_noconflict_predicate_figure6() {
    // Figure 6: PC members speak for reviews unless conflicted; the PC
    // chair (conflicted with her own paper) cannot read its review.
    let p = mp_proxy();
    p.execute(
        "PRINCTYPE physical_user EXTERNAL; \
         PRINCTYPE contact, review; \
         CREATE TABLE ContactInfo ( contactId int, email varchar(120), \
           (email physical_user) SPEAKS FOR (contactId contact) ); \
         CREATE TABLE PCMember ( contactId int ); \
         CREATE TABLE PaperConflict ( paperId int, contactId int ); \
         CREATE TABLE PaperReview ( paperId int, \
           reviewerId int ENC FOR (paperId review), \
           commentsToPC text ENC FOR (paperId review), \
           (PCMember.contactId contact) SPEAKS FOR (paperId review) \
             IF NoConflict(paperId, contactId) )",
    )
    .unwrap();
    // The paper's NoConflict SQL function.
    p.register_predicate(
        "NoConflict",
        "SELECT COUNT(*) = 0 FROM PaperConflict WHERE paperId = $1 AND contactId = $2",
    );
    // chair (contact 1) is conflicted with paper 42; reviewer (contact 2)
    // is not.
    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('chair@x', 'c-pw')")
        .unwrap();
    p.execute("INSERT INTO cryptdb_active (username, password) VALUES ('rev@x', 'r-pw')")
        .unwrap();
    p.execute("INSERT INTO ContactInfo (contactId, email) VALUES (1, 'chair@x')")
        .unwrap();
    p.execute("INSERT INTO ContactInfo (contactId, email) VALUES (2, 'rev@x')")
        .unwrap();
    p.execute("INSERT INTO PCMember (contactId) VALUES (1)")
        .unwrap();
    p.execute("INSERT INTO PCMember (contactId) VALUES (2)")
        .unwrap();
    p.execute("INSERT INTO PaperConflict (paperId, contactId) VALUES (42, 1)")
        .unwrap();
    p.execute(
        "INSERT INTO PaperReview (paperId, reviewerId, commentsToPC) \
         VALUES (42, 2, 'weak accept; novel onion design')",
    )
    .unwrap();
    p.logout("chair@x");
    p.logout("rev@x");

    // The reviewer can read the review.
    p.login("rev@x", "r-pw").unwrap();
    let r = p
        .execute("SELECT commentsToPC FROM PaperReview WHERE paperId = 42")
        .unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Str("weak accept; novel onion design".into()))
    );
    p.logout("rev@x");

    // The conflicted chair sees only ciphertext — "even if she breaks
    // into the application or database" (§5).
    p.login("chair@x", "c-pw").unwrap();
    let r = p
        .execute("SELECT commentsToPC FROM PaperReview WHERE paperId = 42")
        .unwrap();
    assert!(
        matches!(r.scalar(), Some(Value::Bytes(_))),
        "conflicted chair must not decrypt the review"
    );
}

#[test]
fn revocation_removes_access() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    // Revoke Alice's access by deleting the privmsgs_to row, then log her
    // in: the chain is broken.
    p.login("bob", "bob-pw").unwrap();
    p.execute("DELETE FROM privmsgs_to WHERE msgid = 5 AND rcpt_id = 1")
        .unwrap();
    p.logout("bob");
    p.login("alice", "alice-pw").unwrap();
    let r = p
        .execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
        .unwrap();
    assert!(
        matches!(r.scalar(), Some(Value::Bytes(_))),
        "revoked recipient must see ciphertext"
    );
}

#[test]
fn server_state_has_no_plaintext_secrets() {
    let p = mp_proxy();
    phpbb_schema(&p);
    send_message_flow(&p);
    // Full server dump: no occurrence of the message text or passwords.
    for t in p.engine().table_names() {
        p.engine()
            .with_table(&t, |tab| {
                for (_, row) in tab.iter() {
                    for v in row {
                        if let Value::Str(s) = v {
                            assert!(!s.contains("attack at dawn"), "plaintext leaked in {t}");
                            assert!(!s.contains("alice-pw"), "password leaked in {t}");
                            assert!(!s.contains("bob-pw"), "password leaked in {t}");
                        }
                    }
                }
            })
            .unwrap();
    }
}
