//! Prepared-statement API tests: parse-once planning, parameter
//! encryption per onion slot, plan-cache behaviour, and epoch-based
//! invalidation (a plan cached before DDL or an onion adjustment is
//! never executed stale).

use cryptdb_core::proxy::{ColumnType, Param, Proxy, ProxyConfig};
use cryptdb_core::ProxyError;
use cryptdb_engine::{Engine, QueryResult, Value};
use std::sync::Arc;

fn proxy() -> Proxy {
    let cfg = ProxyConfig {
        paillier_bits: 256,
        ..Default::default()
    };
    Proxy::new(Arc::new(Engine::new()), [42u8; 32], cfg)
}

fn seeded(p: &Proxy) {
    p.execute(
        "CREATE TABLE employees (id int, name text, dept text, salary int); \
         INSERT INTO employees (id, name, dept, salary) VALUES \
           (23, 'Alice', 'sales', 60000), \
           (2, 'Bob', 'sales', 55000), \
           (3, 'Carol', 'eng', 80000), \
           (4, 'Dave', 'eng', 75000)",
    )
    .unwrap();
}

#[test]
fn prepared_matches_simple_equality() {
    let p = proxy();
    seeded(&p);
    let ps = p
        .prepare("SELECT id FROM employees WHERE name = $1")
        .unwrap();
    assert_eq!(ps.param_count(), 1);
    assert_eq!(ps.param_kinds(), &[Some(ColumnType::Text)]);
    let prepared = p
        .execute_prepared(&ps, &[Param::Str("Alice".into())])
        .unwrap();
    let simple = p
        .execute("SELECT id FROM employees WHERE name = 'Alice'")
        .unwrap();
    assert_eq!(prepared.canonical_text(), simple.canonical_text());
    assert_eq!(prepared.rows(), &[vec![Value::Int(23)]]);
    // Same handle, different binding: the plan re-encrypts only the
    // bound literal.
    let r = p
        .execute_prepared(&ps, &[Param::Str("Bob".into())])
        .unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(2)]]);
}

#[test]
fn prepare_is_answered_from_the_plan_cache() {
    let p = proxy();
    seeded(&p);
    let before = p.plan_cache_stats();
    let a = p
        .prepare("SELECT id FROM employees WHERE name = $1")
        .unwrap();
    let b = p
        .prepare("SELECT id FROM employees WHERE name = $1")
        .unwrap();
    // Whitespace-normalized key: trim-equal SQL shares one plan.
    let c = p
        .prepare("  SELECT id FROM employees WHERE name = $1  ")
        .unwrap();
    let after = p.plan_cache_stats();
    assert_eq!(after.misses, before.misses + 1);
    assert!(after.hits >= before.hits + 2);
    assert!(after.cached >= 1);
    for ps in [&a, &b, &c] {
        let r = p
            .execute_prepared(ps, &[Param::Str("Carol".into())])
            .unwrap();
        assert_eq!(r.rows(), &[vec![Value::Int(3)]]);
    }
}

#[test]
fn ordered_param_slot_uses_ope() {
    let p = proxy();
    seeded(&p);
    let ps = p
        .prepare("SELECT name FROM employees WHERE salary > $1 ORDER BY salary")
        .unwrap();
    assert_eq!(ps.param_kinds(), &[Some(ColumnType::Int)]);
    let r = p.execute_prepared(&ps, &[Param::Int(70000)]).unwrap();
    let names: Vec<_> = r
        .rows()
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, ["Dave", "Carol"]);
}

#[test]
fn same_placeholder_at_multiple_positions() {
    let p = proxy();
    seeded(&p);
    // $1 occurs twice against different columns; each occurrence gets
    // its own per-column ciphertext.
    let ps = p
        .prepare("SELECT id FROM employees WHERE name = $1 OR dept = $1")
        .unwrap();
    assert_eq!(ps.param_count(), 1);
    let r = p
        .execute_prepared(&ps, &[Param::Str("sales".into())])
        .unwrap();
    let mut ids: Vec<i64> = r
        .rows()
        .iter()
        .map(|row| row[0].as_int().unwrap())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, [2, 23]);
}

#[test]
fn generic_plan_covers_writes_and_like() {
    let p = proxy();
    seeded(&p);
    let ins = p
        .prepare("INSERT INTO employees (id, name, dept, salary) VALUES ($1, $2, 'eng', $3)")
        .unwrap();
    let r = p
        .execute_prepared(
            &ins,
            &[Param::Int(5), Param::Str("Eve".into()), Param::Int(90000)],
        )
        .unwrap();
    assert_eq!(r, QueryResult::Affected(1));
    // LIKE's rewrite depends on the wildcard shape, unknown until
    // Bind, so it takes the generic (substitute-then-rewrite) path.
    // The SEARCH onion is word search, so the pattern names the word.
    let like = p
        .prepare("SELECT name FROM employees WHERE name LIKE $1")
        .unwrap();
    let r = p
        .execute_prepared(&like, &[Param::Str("%eve%".into())])
        .unwrap();
    let names: Vec<_> = r
        .rows()
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, ["Eve"]);
}

#[test]
fn arity_and_numbering_errors() {
    let p = proxy();
    seeded(&p);
    let ps = p
        .prepare("SELECT id FROM employees WHERE name = $1")
        .unwrap();
    let err = p.execute_prepared(&ps, &[]).unwrap_err();
    assert!(matches!(err, ProxyError::Schema(_)), "{err}");
    let err = p
        .execute_prepared(&ps, &[Param::Str("a".into()), Param::Str("b".into())])
        .unwrap_err();
    assert!(matches!(err, ProxyError::Schema(_)), "{err}");
    // $0 is rejected at the parser (placeholders are 1-based).
    let err = p
        .prepare("SELECT id FROM employees WHERE id = $0")
        .unwrap_err();
    assert!(
        matches!(err, ProxyError::Schema(_) | ProxyError::Parse(_)),
        "{err}"
    );
    let err = p.prepare("SELECT 1; SELECT 2").unwrap_err();
    assert!(matches!(err, ProxyError::Schema(_)), "{err}");
}

#[test]
fn ddl_invalidates_cached_plan() {
    let p = proxy();
    p.execute("CREATE TABLE t (k int, v text)").unwrap();
    p.execute("INSERT INTO t (k, v) VALUES (1, 'old')").unwrap();
    let ps = p.prepare("SELECT v FROM t WHERE k = $1").unwrap();
    let r = p.execute_prepared(&ps, &[Param::Int(1)]).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Str("old".into())]]);
    // DROP + CREATE moves the schema epoch; the held handle must be
    // re-planned against the new table, never run with the old keys.
    p.execute("DROP TABLE t").unwrap();
    p.execute("CREATE TABLE t (k int, v text)").unwrap();
    p.execute("INSERT INTO t (k, v) VALUES (1, 'new')").unwrap();
    let before = p.plan_cache_stats().invalidated;
    let r = p.execute_prepared(&ps, &[Param::Int(1)]).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Str("new".into())]]);
    assert!(p.plan_cache_stats().invalidated > before);
    // And the re-planned entry is reusable without another rebuild.
    let stable = p.plan_cache_stats().invalidated;
    let r = p.execute_prepared(&ps, &[Param::Int(1)]).unwrap();
    assert_eq!(r.rows(), &[vec![Value::Str("new".into())]]);
    assert_eq!(p.plan_cache_stats().invalidated, stable);
}

#[test]
fn onion_adjustment_invalidates_cached_plan() {
    let p = proxy();
    seeded(&p);
    let ps = p
        .prepare("SELECT id FROM employees WHERE name = $1")
        .unwrap();
    let r = p
        .execute_prepared(&ps, &[Param::Str("Alice".into())])
        .unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(23)]]);
    // A simple-path range query exposes OPE on salary — an onion
    // adjustment that bumps the schema epoch mid-session.
    p.execute("SELECT id FROM employees WHERE salary > 70000")
        .unwrap();
    let before = p.plan_cache_stats().invalidated;
    let r = p
        .execute_prepared(&ps, &[Param::Str("Alice".into())])
        .unwrap();
    assert_eq!(r.rows(), &[vec![Value::Int(23)]]);
    assert!(p.plan_cache_stats().invalidated > before);
}
