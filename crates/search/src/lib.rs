//! SEARCH: encrypted keyword search (Song–Wagner–Perrig), §3.1.
//!
//! CryptDB supports `LIKE "% word %"` by storing, per text value, a list of
//! per-word SWP ciphertexts. Following the paper's usage of the protocol:
//!
//! 1. the text is split into keywords at standard delimiters,
//! 2. duplicates are removed,
//! 3. word positions are randomly permuted,
//! 4. each word is padded to a fixed size (here: mapped through SHA-256 to
//!    a 16-byte block, which both pads and hides length),
//! 5. each block is encrypted with the SWP construction.
//!
//! To search, the proxy hands the server a *token*; the server's UDF scans
//! each stored word and learns only whether the token matched — nothing
//! else, and only for the tokens actually queried.

#![forbid(unsafe_code)]

use cryptdb_crypto::aes::Aes;
use cryptdb_crypto::modes::BlockCipher;
use cryptdb_crypto::prf::{derive_key, prf, Key};
use cryptdb_crypto::sha256::sha256;
use rand::RngCore;

/// Fixed per-word block size (bytes): 8-byte left part, 8-byte check part.
pub const WORD_BLOCK: usize = 16;
const LEFT: usize = 8;

/// A search key for one column.
pub struct SearchKey {
    /// Deterministic pre-encryption cipher E_{k''}.
    pre: Aes,
    /// Key-derivation key k' for the per-word check keys.
    kprime: Key,
}

/// A search token the proxy sends to the server: the pre-encryption of the
/// queried word plus the word-specific check key. Reveals nothing about
/// the word itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchToken {
    /// X = E_{k''}(word block).
    pub x: [u8; WORD_BLOCK],
    /// k_w = f_{k'}(L(X)).
    pub kw: Key,
}

/// The encrypted word list stored for one text value.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SearchCiphertext(pub Vec<[u8; WORD_BLOCK]>);

impl SearchKey {
    /// Derives a search key from 32 key bytes.
    pub fn new(key: &Key) -> Self {
        let pre_key = derive_key(key, &["search", "pre"]);
        let mut aes_key = [0u8; 16];
        aes_key.copy_from_slice(&pre_key[..16]);
        SearchKey {
            pre: Aes::new_128(&aes_key),
            kprime: derive_key(key, &["search", "kprime"]),
        }
    }

    /// Canonical fixed-size block for a word: SHA-256 truncated to 16 bytes
    /// of the lowercased word (pads short words, hides all lengths).
    fn word_block(word: &str) -> [u8; WORD_BLOCK] {
        let digest = sha256(word.to_lowercase().as_bytes());
        digest[..WORD_BLOCK].try_into().expect("16 <= 32")
    }

    /// Deterministic pre-encryption X = E_{k''}(W).
    fn pre_encrypt(&self, word: &str) -> [u8; WORD_BLOCK] {
        let mut x = Self::word_block(word);
        self.pre.encrypt_block(&mut x);
        x
    }

    fn word_key(&self, left: &[u8]) -> Key {
        prf(&self.kprime, left)
    }

    /// Encrypts one word: `C = X ⊕ (S ‖ F_{k_w}(S))` with random salt `S`.
    pub fn encrypt_word<R: RngCore + ?Sized>(&self, word: &str, rng: &mut R) -> [u8; WORD_BLOCK] {
        let x = self.pre_encrypt(word);
        let kw = self.word_key(&x[..LEFT]);
        let mut salt = [0u8; LEFT];
        rng.fill_bytes(&mut salt);
        let check = prf(&kw, &salt);
        let mut c = [0u8; WORD_BLOCK];
        for i in 0..LEFT {
            c[i] = x[i] ^ salt[i];
            c[LEFT + i] = x[LEFT + i] ^ check[i];
        }
        c
    }

    /// Splits text into keywords at standard delimiters (the paper allows a
    /// schema-specified extractor; this is the default).
    pub fn tokenize(text: &str) -> Vec<&str> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .collect()
    }

    /// Encrypts a full text value: tokenize, dedup, permute, encrypt.
    pub fn encrypt_text<R: RngCore + ?Sized>(&self, text: &str, rng: &mut R) -> SearchCiphertext {
        let mut words: Vec<String> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for w in Self::tokenize(text) {
            let lw = w.to_lowercase();
            if seen.insert(lw.clone()) {
                words.push(lw);
            }
        }
        // Fisher-Yates permutation of word positions.
        for i in (1..words.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            words.swap(i, j);
        }
        SearchCiphertext(words.iter().map(|w| self.encrypt_word(w, rng)).collect())
    }

    /// Builds the search token for a word (proxy side).
    pub fn token(&self, word: &str) -> SearchToken {
        let x = self.pre_encrypt(word);
        let kw = self.word_key(&x[..LEFT]);
        SearchToken { x, kw }
    }
}

/// Server-side match of a token against one encrypted word (the UDF body).
///
/// Computes `T = C ⊕ X`; a match iff the right half equals `F_{k_w}(left)`.
pub fn matches_word(cipher_word: &[u8; WORD_BLOCK], token: &SearchToken) -> bool {
    let mut t = [0u8; WORD_BLOCK];
    for i in 0..WORD_BLOCK {
        t[i] = cipher_word[i] ^ token.x[i];
    }
    let check = prf(&token.kw, &t[..LEFT]);
    t[LEFT..] == check[..LEFT]
}

/// Server-side match against a whole stored word list.
pub fn matches_any(ct: &SearchCiphertext, token: &SearchToken) -> bool {
    ct.0.iter().any(|w| matches_word(w, token))
}

impl SearchCiphertext {
    /// Serialises to `count ‖ word-blocks` bytes for storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = (self.0.len() as u32).to_be_bytes().to_vec();
        for w in &self.0 {
            out.extend_from_slice(w);
        }
        out
    }

    /// Parses the serialised form; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let count = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
        if bytes.len() != 4 + count * WORD_BLOCK {
            return None;
        }
        let words = bytes[4..]
            .chunks_exact(WORD_BLOCK)
            .map(|c| c.try_into().expect("exact chunks"))
            .collect();
        Some(SearchCiphertext(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SearchKey, StdRng) {
        (SearchKey::new(&[17u8; 32]), StdRng::seed_from_u64(55))
    }

    #[test]
    fn word_present_matches() {
        let (k, mut rng) = setup();
        let ct = k.encrypt_text("hello alice, this is a secret message", &mut rng);
        assert!(matches_any(&ct, &k.token("alice")));
        assert!(matches_any(&ct, &k.token("secret")));
        assert!(matches_any(&ct, &k.token("SECRET")), "case-insensitive");
    }

    #[test]
    fn word_absent_does_not_match() {
        let (k, mut rng) = setup();
        let ct = k.encrypt_text("hello alice", &mut rng);
        assert!(!matches_any(&ct, &k.token("bob")));
        assert!(!matches_any(&ct, &k.token("hell")), "full-word only");
    }

    #[test]
    fn duplicates_removed() {
        let (k, mut rng) = setup();
        let ct = k.encrypt_text("spam spam spam eggs", &mut rng);
        assert_eq!(ct.0.len(), 2, "repeated words stored once");
    }

    #[test]
    fn repeated_words_across_rows_unlinkable() {
        // SWP is salted: the same word encrypts differently in different
        // rows, so the server cannot see cross-row repetition.
        let (k, mut rng) = setup();
        let c1 = k.encrypt_text("alice", &mut rng);
        let c2 = k.encrypt_text("alice", &mut rng);
        assert_ne!(c1.0[0], c2.0[0]);
        let tok = k.token("alice");
        assert!(matches_any(&c1, &tok) && matches_any(&c2, &tok));
    }

    #[test]
    fn different_keys_do_not_cross_match() {
        let (k1, mut rng) = setup();
        let k2 = SearchKey::new(&[18u8; 32]);
        let ct = k1.encrypt_text("alice", &mut rng);
        assert!(!matches_any(&ct, &k2.token("alice")));
    }

    #[test]
    fn serialization_roundtrip() {
        let (k, mut rng) = setup();
        let ct = k.encrypt_text("one two three", &mut rng);
        let bytes = ct.to_bytes();
        let back = SearchCiphertext::from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        assert!(SearchCiphertext::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn empty_text() {
        let (k, mut rng) = setup();
        let ct = k.encrypt_text("", &mut rng);
        assert!(ct.0.is_empty());
        assert!(!matches_any(&ct, &k.token("anything")));
    }

    #[test]
    fn tokenizer_standard_delimiters() {
        let words = SearchKey::tokenize("a,b;c d-e_f(g)");
        assert_eq!(words, vec!["a", "b", "c", "d", "e", "f", "g"]);
    }
}
