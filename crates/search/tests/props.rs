//! Property tests: SWP search completeness and soundness-in-practice.

use cryptdb_search::{matches_any, SearchKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Completeness: every word in the text matches its own token.
    #[test]
    fn no_false_negatives(words in proptest::collection::vec("[a-z]{1,12}", 1..12)) {
        let key = SearchKey::new(&[7u8; 32]);
        let mut rng = StdRng::seed_from_u64(1);
        let text = words.join(" ");
        let ct = key.encrypt_text(&text, &mut rng);
        for w in &words {
            prop_assert!(
                matches_any(&ct, &key.token(w)),
                "word '{w}' in '{text}' must match"
            );
        }
    }

    /// Soundness in practice: words absent from the text do not match
    /// (the SWP check has a 2^-64 false-positive rate).
    #[test]
    fn absent_words_do_not_match(words in proptest::collection::vec("[a-z]{1,12}", 1..8),
                                 probe in "[a-z]{1,12}") {
        prop_assume!(!words.iter().any(|w| w.eq_ignore_ascii_case(&probe)));
        let key = SearchKey::new(&[8u8; 32]);
        let mut rng = StdRng::seed_from_u64(2);
        let ct = key.encrypt_text(&words.join(" "), &mut rng);
        prop_assert!(!matches_any(&ct, &key.token(&probe)));
    }

    /// The duplicate-removal step (§3.1): ciphertext length counts
    /// distinct lowercased words only.
    #[test]
    fn dedup_counts_distinct(words in proptest::collection::vec("[a-z]{1,6}", 0..16)) {
        let key = SearchKey::new(&[9u8; 32]);
        let mut rng = StdRng::seed_from_u64(3);
        let ct = key.encrypt_text(&words.join(" "), &mut rng);
        let distinct: std::collections::HashSet<String> =
            words.iter().map(|w| w.to_lowercase()).collect();
        prop_assert_eq!(ct.0.len(), distinct.len());
    }

    /// Serialisation round-trips and rejects truncation.
    #[test]
    fn serialisation_roundtrip(words in proptest::collection::vec("[a-z]{1,8}", 0..10)) {
        let key = SearchKey::new(&[10u8; 32]);
        let mut rng = StdRng::seed_from_u64(4);
        let ct = key.encrypt_text(&words.join(" "), &mut rng);
        let bytes = ct.to_bytes();
        prop_assert_eq!(cryptdb_search::SearchCiphertext::from_bytes(&bytes).unwrap(), ct);
        if !bytes.is_empty() {
            prop_assert!(
                cryptdb_search::SearchCiphertext::from_bytes(&bytes[..bytes.len() - 1]).is_none()
            );
        }
    }
}
