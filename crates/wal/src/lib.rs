//! Append-only write-ahead log for ciphertext mutations, with snapshots
//! and deterministic fault injection.
//!
//! CryptDB's threat model (§2.1) assumes the DBMS server — disk included
//! — sees only ciphertext, so durability is security-free: a log of
//! encrypted mutations leaks nothing beyond the live store. This crate
//! is the byte-level half of that subsystem; `cryptdb-engine` layers the
//! semantic record encoding (create/insert/update/delete/onion-adjust
//! ops) on top.
//!
//! # Record framing
//!
//! Each record is `[len: u32 LE][crc: u32 LE][body]` where the body is
//! `[seq: u64 LE][payload]`, `len = body.len()`, and `crc` is CRC-32
//! (IEEE) over the body. Sequence numbers are assigned by the log,
//! strictly increasing, and never reused — a failed append does not
//! consume its sequence number.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the existing log and always lands on the longest
//! valid record prefix: a torn tail (partial final record), a truncation
//! at an arbitrary byte offset, or a CRC-corrupt record all terminate
//! the scan at the last intact record. The file is then truncated to
//! that prefix so subsequent appends extend a valid log, and a
//! [`RecoveryReport`] describes what was found. Snapshots
//! ([`Wal::write_snapshot`]) are written to a temp file, fsynced and
//! atomically renamed; a corrupt or torn snapshot is simply ignored
//! (the log is never truncated by a snapshot, so full-log replay always
//! remains possible).
//!
//! # Fault injection
//!
//! A [`FaultPlan`] installs a failpoint writer between the log and the
//! file: it can kill the process's write stream at an absolute byte
//! offset (persisting only the prefix — a torn write), fail the fsync
//! after the n-th append (record durable but unacknowledged), or flip a
//! single bit as it is written (silent media corruption, which recovery
//! must catch via CRC). All faults are plan-driven and deterministic, so
//! failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: `len: u32` + `crc: u32`.
const HEADER_LEN: usize = 8;
/// Body prefix: the record sequence number.
const SEQ_LEN: usize = 8;
/// Sanity bound on a single record body; anything larger is treated as
/// corruption of the length field.
const MAX_BODY_LEN: u32 = 1 << 30;
/// Snapshot file magic + version.
const SNAPSHOT_MAGIC: &[u8; 8] = b"CDBSNAP1";

/// Errors produced by the log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed (including injected
    /// faults, which surface as I/O errors).
    Io(io::Error),
    /// On-disk state that should be impossible if the caller respected
    /// the crate's invariants (e.g. appending to a log opened by a
    /// different path).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// When appended records are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record, before the append returns. A statement
    /// acknowledged under `Always` is durable.
    Always,
    /// Group commit: fsync once every `n` records. A crash can lose up
    /// to `n - 1` acknowledged records (but recovery still lands on a
    /// valid prefix of them).
    EveryN(u32),
    /// Never fsync explicitly (bench baseline; durability is whatever
    /// the OS page cache provides).
    Never,
}

/// How a deterministic failpoint interferes with the log file.
///
/// All offsets are absolute byte offsets into `wal.log`; append counts
/// are 1-based and count appends in the current process only.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Kill the write stream at this byte offset: the write that crosses
    /// it persists only the prefix up to the offset (a torn write), then
    /// every later write and sync fails.
    pub kill_at_byte: Option<u64>,
    /// Fail (and kill) the fsync that follows the n-th successful
    /// append: the record is fully written but never acknowledged.
    pub kill_sync_at_append: Option<u64>,
    /// Flip bit `1 << (b % 8)` of the byte at this offset as it is
    /// written — silent corruption that only CRC validation can catch.
    /// The stream stays alive.
    pub flip_bit_at: Option<(u64, u8)>,
}

impl FaultPlan {
    /// Plan that tears the log at byte offset `k`.
    pub fn kill_at(k: u64) -> FaultPlan {
        FaultPlan {
            kill_at_byte: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Plan that fails the fsync after the `n`-th append.
    pub fn kill_sync_after(n: u64) -> FaultPlan {
        FaultPlan {
            kill_sync_at_append: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan that flips one bit at byte offset `offset`.
    pub fn flip_bit(offset: u64, bit: u8) -> FaultPlan {
        FaultPlan {
            flip_bit_at: Some((offset, bit)),
            ..FaultPlan::default()
        }
    }
}

/// Log configuration.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Flush policy for appends.
    pub fsync: FsyncPolicy,
    /// Write a snapshot automatically every `n` records (enforced by the
    /// engine layer, which owns the state being snapshotted; the log
    /// only stores the value).
    pub snapshot_every: Option<u64>,
    /// Deterministic fault injection for the log file (tests only).
    pub fault: Option<FaultPlan>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            snapshot_every: None,
            fault: None,
        }
    }
}

/// How the scan of the existing log ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailState {
    /// The log ended exactly on a record boundary.
    Clean,
    /// The final record was incomplete (torn write / truncation).
    Torn,
    /// A record failed CRC validation (or carried an insane length).
    Corrupt,
}

/// What recovery found, and what it did about it.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Valid records handed to the caller for replay. The engine layer
    /// overwrites this with the count actually applied after snapshot
    /// filtering.
    pub records_applied: u64,
    /// Bytes past the longest valid prefix, discarded by truncation.
    pub bytes_discarded: u64,
    /// True iff the scan ended on a CRC failure (as opposed to a clean
    /// end or a torn tail). A detected corruption is never replayed.
    pub corruption_detected: bool,
    /// How the tail of the log was classified.
    pub tail: TailState,
    /// Epoch (sequence watermark) of the snapshot used, if a valid one
    /// was found.
    pub snapshot_epoch: Option<u64>,
    /// Sequence number of the last valid record (0 when the log held no
    /// valid records and there was no snapshot).
    pub last_seq: u64,
}

/// A decoded, CRC-validated snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotData {
    /// Sequence watermark: records with `seq <= epoch` are already
    /// reflected in the payload.
    pub epoch: u64,
    /// Opaque engine-encoded state.
    pub payload: Vec<u8>,
}

/// Everything [`Wal::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The last complete, valid snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// All valid `(seq, payload)` records in log order (including those
    /// at or below the snapshot epoch — the caller filters).
    pub records: Vec<(u64, Vec<u8>)>,
    /// Scan outcome.
    pub report: RecoveryReport,
}

// ---- storage layer ----

/// The byte sink the log writes through; the failpoint writer and the
/// plain file both implement it.
trait LogFile: Send {
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    fn sync(&mut self) -> io::Result<()>;
}

struct PlainFile {
    file: File,
}

impl LogFile for PlainFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Wraps the log file and injects the faults described by a
/// [`FaultPlan`]. Once a kill fires, every subsequent write and sync
/// fails — the process's view of the file is frozen, as after a crash.
struct FailpointWriter {
    inner: PlainFile,
    plan: FaultPlan,
    /// Absolute byte offset of the next write (starts at the recovered
    /// log length).
    written: u64,
    /// Successful appends in this process.
    appends: u64,
    dead: bool,
}

impl FailpointWriter {
    fn killed() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "failpoint: killed")
    }
}

impl LogFile for FailpointWriter {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(Self::killed());
        }
        let mut data = buf.to_vec();
        if let Some((off, bit)) = self.plan.flip_bit_at {
            if off >= self.written && off < self.written + data.len() as u64 {
                data[(off - self.written) as usize] ^= 1 << (bit % 8);
            }
        }
        if let Some(k) = self.plan.kill_at_byte {
            if self.written + data.len() as u64 > k {
                let keep = k.saturating_sub(self.written) as usize;
                // Persist the torn prefix, then die.
                self.inner.append(&data[..keep])?;
                self.inner.sync().ok();
                self.dead = true;
                return Err(Self::killed());
            }
        }
        self.inner.append(&data)?;
        self.written += data.len() as u64;
        self.appends += 1;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::killed());
        }
        if let Some(n) = self.plan.kill_sync_at_append {
            if self.appends >= n {
                // The data of append #n is already in the file (and we
                // flush it to be faithful to "crash after write, before
                // ack"), but the caller never sees a success.
                self.inner.sync().ok();
                self.dead = true;
                return Err(Self::killed());
            }
        }
        self.inner.sync()
    }
}

// ---- the log ----

struct Inner {
    dir: PathBuf,
    log: Box<dyn LogFile>,
    /// Last assigned sequence number.
    seq: u64,
    policy: FsyncPolicy,
    /// Records appended since the last fsync (for `EveryN`).
    unsynced: u32,
    /// Epoch of the most recent snapshot (0 = none).
    snapshot_epoch: u64,
    /// Current log file length in bytes (tracked, not re-stat'd).
    log_len: u64,
}

/// The append-only record log. Thread-safe; appends are serialized by an
/// internal lock, so callers holding their own state locks across
/// [`Wal::append`] get WAL order == apply order.
pub struct Wal {
    inner: Mutex<Inner>,
}

/// Path of the record log inside `dir`.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// Path of the snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir`, scans it, and
    /// truncates the file to the longest valid record prefix. Returns
    /// the log positioned for appending plus everything recovered.
    pub fn open(dir: &Path, cfg: &WalConfig) -> Result<(Wal, RecoveredLog), WalError> {
        fs::create_dir_all(dir)?;
        let snapshot = read_snapshot(&snapshot_path(dir));
        let path = log_path(dir);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_log(&bytes);
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(scan.valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(scan.valid_len))?;
        let plain = PlainFile { file };
        let log: Box<dyn LogFile> = match &cfg.fault {
            None => Box::new(plain),
            Some(plan) => Box::new(FailpointWriter {
                inner: plain,
                plan: plan.clone(),
                written: scan.valid_len,
                appends: 0,
                dead: false,
            }),
        };
        let last_seq = scan
            .records
            .last()
            .map(|(s, _)| *s)
            .or(snapshot.as_ref().map(|s| s.epoch))
            .unwrap_or(0);
        let snapshot_epoch = snapshot.as_ref().map(|s| s.epoch).unwrap_or(0);
        let report = RecoveryReport {
            records_applied: scan.records.len() as u64,
            bytes_discarded: bytes.len() as u64 - scan.valid_len,
            corruption_detected: scan.tail == TailState::Corrupt,
            tail: scan.tail,
            snapshot_epoch: snapshot.as_ref().map(|s| s.epoch),
            last_seq,
        };
        let wal = Wal {
            inner: Mutex::new(Inner {
                dir: dir.to_path_buf(),
                log,
                seq: last_seq.max(snapshot_epoch),
                policy: cfg.fsync,
                unsynced: 0,
                snapshot_epoch,
                log_len: scan.valid_len,
            }),
        };
        Ok((
            wal,
            RecoveredLog {
                snapshot,
                records: scan.records,
                report,
            },
        ))
    }

    /// Appends one record and returns its sequence number. The record is
    /// flushed according to the fsync policy; a failed append does not
    /// consume a sequence number.
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut inner = self.inner.lock();
        let seq = inner.seq + 1;
        let frame = encode_frame(seq, payload);
        inner.log.append(&frame)?;
        inner.seq = seq;
        inner.log_len += frame.len() as u64;
        match inner.policy {
            FsyncPolicy::Always => inner.log.sync()?,
            FsyncPolicy::EveryN(n) => {
                inner.unsynced += 1;
                if inner.unsynced >= n.max(1) {
                    inner.log.sync()?;
                    inner.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Forces an fsync regardless of policy (group-commit barrier).
    pub fn sync(&self) -> Result<(), WalError> {
        let mut inner = self.inner.lock();
        inner.log.sync()?;
        inner.unsynced = 0;
        Ok(())
    }

    /// Last assigned sequence number.
    pub fn seq(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Current byte length of the log file.
    pub fn log_len(&self) -> u64 {
        self.inner.lock().log_len
    }

    /// Epoch of the most recent snapshot written or recovered (0 if
    /// none).
    pub fn snapshot_epoch(&self) -> u64 {
        self.inner.lock().snapshot_epoch
    }

    /// Records appended past the last snapshot epoch — the engine's
    /// trigger input for `snapshot_every`.
    pub fn records_since_snapshot(&self) -> u64 {
        let inner = self.inner.lock();
        inner.seq.saturating_sub(inner.snapshot_epoch)
    }

    /// Writes a snapshot whose payload reflects exactly the state after
    /// the last appended record. The caller must exclude concurrent
    /// appends for that to hold (the engine holds its catalog write
    /// lock). Temp-file + fsync + atomic rename: a crash mid-snapshot
    /// leaves the previous snapshot (or none) intact, and the log is
    /// never truncated, so replay always remains possible.
    pub fn write_snapshot(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut inner = self.inner.lock();
        let epoch = inner.seq;
        let final_path = snapshot_path(&inner.dir);
        let tmp_path = inner.dir.join("snapshot.tmp");
        let mut body = Vec::with_capacity(16 + payload.len());
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
        let crc = crc32(&body);
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(SNAPSHOT_MAGIC)?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        if let Ok(d) = File::open(&inner.dir) {
            d.sync_all().ok();
        }
        inner.snapshot_epoch = epoch;
        Ok(epoch)
    }
}

// ---- framing / scanning ----

fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = SEQ_LEN + payload.len();
    let mut frame = Vec::with_capacity(HEADER_LEN + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0; 4]); // crc placeholder
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[HEADER_LEN..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

struct Scan {
    records: Vec<(u64, Vec<u8>)>,
    valid_len: u64,
    tail: TailState,
}

/// Walks the raw log bytes and returns the longest valid record prefix.
fn scan_log(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut tail = TailState::Clean;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < HEADER_LEN {
            tail = TailState::Torn;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len < SEQ_LEN as u32 || len > MAX_BODY_LEN {
            // A length that no writer could have produced: the header
            // itself is corrupt.
            tail = TailState::Corrupt;
            break;
        }
        let body_len = len as usize;
        if remaining - HEADER_LEN < body_len {
            tail = TailState::Torn;
            break;
        }
        let body = &bytes[offset + HEADER_LEN..offset + HEADER_LEN + body_len];
        if crc32(body) != crc {
            tail = TailState::Corrupt;
            break;
        }
        let seq = u64::from_le_bytes(body[..SEQ_LEN].try_into().unwrap());
        records.push((seq, body[SEQ_LEN..].to_vec()));
        offset += HEADER_LEN + body_len;
    }
    Scan {
        records,
        valid_len: offset as u64,
        tail,
    }
}

/// Reads and validates a snapshot file; any defect (missing, torn,
/// corrupt) yields `None` — the caller falls back to full-log replay.
fn read_snapshot(path: &Path) -> Option<SnapshotData> {
    let mut f = File::open(path).ok()?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 8 + 4 + 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != crc {
        return None;
    }
    let epoch = u64::from_le_bytes(body[..8].try_into().unwrap());
    let payload_len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
    if body.len() - 16 != payload_len {
        return None;
    }
    Some(SnapshotData {
        epoch,
        payload: body[16..].to_vec(),
    })
}

/// CRC-32 (IEEE 802.3, reflected, init/final `0xFFFF_FFFF`) — the same
/// polynomial as zlib. Table-driven, built at first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cryptdb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_default(dir: &Path) -> (Wal, RecoveredLog) {
        Wal::open(dir, &WalConfig::default()).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // zlib's canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let (wal, rec) = open_default(&dir);
            assert_eq!(rec.records.len(), 0);
            assert_eq!(wal.append(b"alpha").unwrap(), 1);
            assert_eq!(wal.append(b"beta").unwrap(), 2);
            assert_eq!(wal.append(b"").unwrap(), 3);
        }
        let (wal, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![
                (1, b"alpha".to_vec()),
                (2, b"beta".to_vec()),
                (3, Vec::new())
            ]
        );
        assert_eq!(rec.report.tail, TailState::Clean);
        assert_eq!(rec.report.bytes_discarded, 0);
        assert_eq!(rec.report.last_seq, 3);
        // Appends continue the sequence.
        assert_eq!(wal.append(b"gamma").unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_reusable() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"keep-me").unwrap();
            wal.append(b"torn-record").unwrap();
        }
        let path = log_path(&dir);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        let (wal, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"keep-me".to_vec())]);
        assert_eq!(rec.report.tail, TailState::Torn);
        assert!(rec.report.bytes_discarded > 0);
        assert!(!rec.report.corruption_detected);
        // The file was truncated to the valid prefix and keeps working.
        assert_eq!(wal.append(b"after-recovery").unwrap(), 2);
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"keep-me".to_vec()), (2, b"after-recovery".to_vec())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_not_replayed() {
        let dir = tmpdir("flip");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload bit inside the second record.
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"first".to_vec())]);
        assert!(rec.report.corruption_detected);
        assert_eq!(rec.report.tail, TailState::Corrupt);
        assert!(rec.report.bytes_discarded > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_and_epoch_filtering_inputs() {
        let dir = tmpdir("snap");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            assert_eq!(wal.write_snapshot(b"STATE@2").unwrap(), 2);
            assert_eq!(wal.snapshot_epoch(), 2);
            wal.append(b"three").unwrap();
            assert_eq!(wal.records_since_snapshot(), 1);
        }
        let (_, rec) = open_default(&dir);
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.payload, b"STATE@2");
        assert_eq!(rec.report.snapshot_epoch, Some(2));
        // All records are still handed back; the engine filters by epoch.
        assert_eq!(rec.records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_ignored_full_log_replay_possible() {
        let dir = tmpdir("snapbad");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"one").unwrap();
            wal.write_snapshot(b"STATE").unwrap();
            wal.append(b"two").unwrap();
        }
        let path = snapshot_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = open_default(&dir);
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.report.snapshot_epoch, None);
        assert_eq!(rec.records.len(), 2, "log replay covers everything");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_kill_at_byte_tears_the_log() {
        let dir = tmpdir("killbyte");
        // First, learn the clean length of two records.
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"record-one").unwrap();
            wal.append(b"record-two").unwrap();
        }
        let clean_len = fs::metadata(log_path(&dir)).unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        // Now kill mid-second-record.
        let cfg = WalConfig {
            fault: Some(FaultPlan::kill_at(clean_len - 3)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"record-one").unwrap();
        assert!(wal.append(b"record-two").is_err(), "append crossing kill");
        assert!(wal.append(b"record-three").is_err(), "stream is dead");
        assert!(wal.sync().is_err(), "sync is dead too");
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"record-one".to_vec())]);
        assert_eq!(rec.report.tail, TailState::Torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_sync_kill_leaves_record_durable_but_unacked() {
        let dir = tmpdir("killsync");
        let cfg = WalConfig {
            fault: Some(FaultPlan::kill_sync_after(2)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"acked").unwrap();
        // Fully written, but the fsync (and thus the ack) fails.
        assert!(wal.append(b"durable-unacked").is_err());
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"acked".to_vec()), (2, b"durable-unacked".to_vec())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_flip_bit_produces_detectable_corruption() {
        let dir = tmpdir("flipwrite");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"aaaa").unwrap();
        }
        let first_len = fs::metadata(log_path(&dir)).unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        let cfg = WalConfig {
            // Flip a bit inside the second record's payload.
            fault: Some(FaultPlan::flip_bit(first_len + HEADER_LEN as u64 + 9, 3)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"aaaa").unwrap();
        // The flip is silent: the append "succeeds".
        wal.append(b"bbbb").unwrap();
        wal.append(b"cccc").unwrap();
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"aaaa".to_vec())]);
        assert!(rec.report.corruption_detected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_groups_commits() {
        let dir = tmpdir("everyn");
        let cfg = WalConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for i in 0..7u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records.len(), 7);
        let _ = fs::remove_dir_all(&dir);
    }
}
