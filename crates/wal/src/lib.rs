//! Segmented append-only write-ahead log for ciphertext mutations, with
//! snapshot-anchored retention and deterministic disk-fault injection.
//!
//! CryptDB's threat model (§2.1) assumes the DBMS server — disk included
//! — sees only ciphertext, so durability is security-free: a log of
//! encrypted mutations leaks nothing beyond the live store. This crate
//! is the byte-level half of that subsystem; `cryptdb-engine` layers the
//! semantic record encoding (create/insert/update/delete/onion-adjust
//! ops) on top.
//!
//! # Record framing
//!
//! Each record is `[len: u32 LE][crc: u32 LE][body]` where the body is
//! `[seq: u64 LE][payload]`, `len = body.len()`, and `crc` is CRC-32
//! (IEEE) over the body. Sequence numbers are assigned by the log,
//! strictly increasing and contiguous, and never reused — a failed
//! append does not consume its sequence number (except a failed *fsync*
//! after a complete write, which surfaces as [`WalError::Unsynced`]: the
//! record is on disk, possibly durable, and its sequence number is
//! consumed).
//!
//! # Segments
//!
//! The log is a chain of segment files `wal-<first_seq>.log`, each named
//! by the sequence number of its first record (zero-padded so
//! lexicographic order is chain order). The active segment is sealed and
//! a new one started once it reaches [`WalConfig::segment_bytes`] or
//! [`WalConfig::segment_records`]; frames never span segments. After a
//! snapshot at epoch `E` becomes durable, sealed segments whose records
//! all satisfy `seq <= E` are deleted, minus a configurable
//! [`WalConfig::keep_segments`] slack — so the on-disk footprint is
//! bounded by the snapshot cadence and recovery replays only the
//! post-snapshot suffix. `keep_segments: None` disables retention and
//! keeps the full chain forever.
//!
//! # Recovery
//!
//! [`Wal::open`] validates the whole chain: segments must be contiguous
//! (each segment's name equals the previous segment's last sequence
//! plus one, and record `i` of a segment named `N` must carry sequence
//! `N + i`), every record must pass CRC, and the first segment must
//! start at or below `snapshot_epoch + 1` so no acknowledged suffix is
//! missing. The scan lands on the longest valid record prefix of the
//! chain: a torn tail, a truncation, or a CRC-corrupt record terminates
//! the scan, the damaged segment is truncated to its valid prefix and
//! becomes the active segment, and any later segment files are deleted
//! (their bytes are counted as discarded). A trailing *empty* segment —
//! the signature of a crash between creating a new segment file and
//! writing to it — is valid and becomes the active segment. A stale
//! `snapshot.tmp` left by a crash mid-snapshot is removed. A legacy
//! single-file `wal.log` (pre-segmentation layout) is migrated in place
//! by renaming it to the first segment.
//!
//! Snapshots ([`Wal::write_snapshot`]) are written to a temp file,
//! fsynced and atomically renamed, and the rename is made durable with a
//! directory fsync *before* retention may delete any segment — so a
//! crash at any point leaves either the old snapshot with the full old
//! chain, or the new snapshot with a chain that still covers its suffix.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] drives deterministic disk faults so every failure
//! reproduces exactly. Crash-style faults (kill at a byte offset, kill
//! the fsync after the n-th append, kill mid-rotation, kill
//! mid-retention-delete) freeze the write stream forever, as after a
//! process crash. Degradation-style faults are *clean and transient*:
//! `ENOSPC` after a byte budget (optionally self-clearing after a number
//! of rejected appends, modelling an operator freeing disk), and
//! windowed `EIO` on append / fsync / snapshot-rename. All injected
//! errors carry the substring `failpoint` so harnesses can tell injected
//! faults from real ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: `len: u32` + `crc: u32`.
const HEADER_LEN: usize = 8;
/// Body prefix: the record sequence number.
const SEQ_LEN: usize = 8;
/// Sanity bound on a single record body; anything larger is treated as
/// corruption of the length field.
const MAX_BODY_LEN: u32 = 1 << 30;
/// Snapshot file magic + version.
const SNAPSHOT_MAGIC: &[u8; 8] = b"CDBSNAP1";

/// Errors produced by the log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed before the record
    /// reached the file — nothing was appended and no sequence number
    /// was consumed. Includes injected faults, which surface as I/O
    /// errors whose message contains `failpoint`.
    Io(io::Error),
    /// The record was fully written and its sequence number consumed,
    /// but the fsync that should have made it durable failed. The
    /// record is *durable-maybe*: recovery may or may not replay it, so
    /// the caller must keep its in-memory effect (memory == log) while
    /// withholding the acknowledgement.
    Unsynced {
        /// Sequence number of the written-but-unsynced record.
        seq: u64,
        /// The fsync failure.
        error: io::Error,
    },
    /// On-disk state that should be impossible if the caller respected
    /// the crate's invariants (e.g. a segment chain whose prefix below
    /// the snapshot epoch is missing).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Unsynced { seq, error } => {
                write!(
                    f,
                    "wal unsynced: record {seq} written but fsync failed: {error}"
                )
            }
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// When appended records are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record, before the append returns. A statement
    /// acknowledged under `Always` is durable.
    Always,
    /// Group commit: fsync once every `n` records. A crash can lose up
    /// to `n - 1` acknowledged records (but recovery still lands on a
    /// valid prefix of them).
    EveryN(u32),
    /// Never fsync explicitly (bench baseline; durability is whatever
    /// the OS page cache provides).
    Never,
}

/// How a deterministic failpoint interferes with the log.
///
/// Byte offsets are *logical* offsets into the record stream (the
/// concatenation of all segments, starting from the recovered length);
/// counts are 1-based and count events in the current process only.
/// `(first, count)` windows fire on attempts `first ..= first+count-1`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Kill the write stream at this logical byte offset: the write
    /// that crosses it persists only the prefix up to the offset (a
    /// torn write), then every later write and sync fails.
    pub kill_at_byte: Option<u64>,
    /// Fail (and kill) the fsync that follows the n-th successful
    /// append: the record is fully written but never acknowledged.
    pub kill_sync_at_append: Option<u64>,
    /// Flip bit `1 << (b % 8)` of the byte at this logical offset as it
    /// is written — silent corruption that only CRC validation can
    /// catch. The stream stays alive.
    pub flip_bit_at: Option<(u64, u8)>,
    /// Reject (cleanly, with no partial write and no sequence number
    /// consumed) any append that would push the logical offset past
    /// this bound — injected `ENOSPC`. The stream stays alive: reads of
    /// log state keep working and the fault can clear.
    pub enospc_after_bytes: Option<u64>,
    /// After this many `ENOSPC` rejections the disk-full condition
    /// clears (modelling an operator freeing space) and appends succeed
    /// again. `None` means the disk stays full forever.
    pub enospc_clear_after: Option<u64>,
    /// Fail append attempts in this `(first, count)` window with a
    /// clean, transient `EIO` — no partial write, no sequence consumed,
    /// the stream stays alive.
    pub eio_appends: Option<(u64, u64)>,
    /// Fail fsync attempts in this `(first, count)` window with a
    /// transient `EIO`. A policy-driven fsync failing after a complete
    /// write surfaces as [`WalError::Unsynced`].
    pub eio_syncs: Option<(u64, u64)>,
    /// Fail snapshot rename attempts in this `(first, count)` window
    /// with a transient `EIO`, leaving `snapshot.tmp` behind (cleaned
    /// up by the next [`Wal::open`]).
    pub eio_renames: Option<(u64, u64)>,
    /// Kill the process during the n-th segment rotation, after the new
    /// (empty) segment file has been created but before the log adopts
    /// it — the crash-mid-rotation window.
    pub kill_at_rotation: Option<u64>,
    /// Kill the process after the n-th retention delete has removed a
    /// segment file — the crash-mid-retention window.
    pub kill_at_retention: Option<u64>,
}

impl FaultPlan {
    /// Plan that tears the log at logical byte offset `k`.
    pub fn kill_at(k: u64) -> FaultPlan {
        FaultPlan {
            kill_at_byte: Some(k),
            ..FaultPlan::default()
        }
    }

    /// Plan that fails the fsync after the `n`-th append.
    pub fn kill_sync_after(n: u64) -> FaultPlan {
        FaultPlan {
            kill_sync_at_append: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan that flips one bit at logical byte offset `offset`.
    pub fn flip_bit(offset: u64, bit: u8) -> FaultPlan {
        FaultPlan {
            flip_bit_at: Some((offset, bit)),
            ..FaultPlan::default()
        }
    }

    /// Plan where the disk fills permanently once `bytes` logical bytes
    /// are on disk.
    pub fn enospc_after(bytes: u64) -> FaultPlan {
        FaultPlan {
            enospc_after_bytes: Some(bytes),
            ..FaultPlan::default()
        }
    }

    /// Plan where the disk fills at `bytes` logical bytes and clears
    /// after `clear_after` rejected appends.
    pub fn enospc_clearing(bytes: u64, clear_after: u64) -> FaultPlan {
        FaultPlan {
            enospc_after_bytes: Some(bytes),
            enospc_clear_after: Some(clear_after),
            ..FaultPlan::default()
        }
    }

    /// Plan that fails `count` append attempts starting at the 1-based
    /// attempt `first` with a transient `EIO`.
    pub fn eio_on_appends(first: u64, count: u64) -> FaultPlan {
        FaultPlan {
            eio_appends: Some((first, count)),
            ..FaultPlan::default()
        }
    }

    /// Plan that fails `count` fsync attempts starting at the 1-based
    /// attempt `first` with a transient `EIO`.
    pub fn eio_on_syncs(first: u64, count: u64) -> FaultPlan {
        FaultPlan {
            eio_syncs: Some((first, count)),
            ..FaultPlan::default()
        }
    }

    /// Plan that fails `count` snapshot renames starting at the 1-based
    /// attempt `first` with a transient `EIO`.
    pub fn eio_on_renames(first: u64, count: u64) -> FaultPlan {
        FaultPlan {
            eio_renames: Some((first, count)),
            ..FaultPlan::default()
        }
    }

    /// Plan that crashes during the `n`-th segment rotation.
    pub fn kill_at_rotation(n: u64) -> FaultPlan {
        FaultPlan {
            kill_at_rotation: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan that crashes after the `n`-th retention delete.
    pub fn kill_at_retention(n: u64) -> FaultPlan {
        FaultPlan {
            kill_at_retention: Some(n),
            ..FaultPlan::default()
        }
    }
}

/// Log configuration.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Flush policy for appends.
    pub fsync: FsyncPolicy,
    /// Write a snapshot automatically every `n` records (enforced by the
    /// engine layer, which owns the state being snapshotted; the log
    /// only stores the value).
    pub snapshot_every: Option<u64>,
    /// Seal the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Seal the active segment once it holds this many records.
    pub segment_records: u64,
    /// Snapshot-anchored retention: after a durable snapshot at epoch
    /// `E`, delete sealed segments wholly at or below `E`, keeping this
    /// many of them as slack. `None` disables retention (the full chain
    /// is kept forever and full-chain replay always remains possible).
    pub keep_segments: Option<u64>,
    /// Deterministic fault injection for the log (tests only).
    pub fault: Option<FaultPlan>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            snapshot_every: None,
            segment_bytes: 4 << 20,
            segment_records: u64::MAX,
            keep_segments: Some(1),
            fault: None,
        }
    }
}

/// How the scan of the existing log ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailState {
    /// The log ended exactly on a record boundary.
    Clean,
    /// The final record was incomplete (torn write / truncation).
    Torn,
    /// A record failed CRC validation (or carried an insane length or
    /// an out-of-order sequence number), or the segment chain had a
    /// gap.
    Corrupt,
}

/// What recovery found, and what it did about it.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Valid records handed to the caller for replay. The engine layer
    /// overwrites this with the count actually applied after snapshot
    /// filtering.
    pub records_applied: u64,
    /// Bytes past the longest valid prefix of the chain, discarded by
    /// truncation or by deleting segments past a chain break.
    pub bytes_discarded: u64,
    /// True iff the scan ended on a CRC/sequence failure or a chain gap
    /// (as opposed to a clean end or a torn tail). A detected
    /// corruption is never replayed.
    pub corruption_detected: bool,
    /// How the tail of the chain was classified.
    pub tail: TailState,
    /// Epoch (sequence watermark) of the snapshot used, if a valid one
    /// was found.
    pub snapshot_epoch: Option<u64>,
    /// Sequence number of the last valid record (0 when the log held no
    /// valid records and there was no snapshot).
    pub last_seq: u64,
    /// Number of segment files in the recovered chain (including the
    /// active one).
    pub segments: u64,
}

/// A decoded, CRC-validated snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotData {
    /// Sequence watermark: records with `seq <= epoch` are already
    /// reflected in the payload.
    pub epoch: u64,
    /// Opaque engine-encoded state.
    pub payload: Vec<u8>,
}

/// Everything [`Wal::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The last complete, valid snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// All valid `(seq, payload)` records still on disk, in log order.
    /// With retention enabled, records at or below the snapshot epoch
    /// may have been deleted — the snapshot covers them; the caller
    /// filters by epoch either way.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Scan outcome.
    pub report: RecoveryReport,
}

/// Point-in-time observability counters for the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Segment files in the live chain (including the active one).
    pub segments: u64,
    /// Total on-disk bytes across the chain.
    pub disk_bytes: u64,
    /// Last assigned sequence number.
    pub last_seq: u64,
    /// Epoch of the most recent snapshot (0 = none).
    pub snapshot_epoch: u64,
    /// Segment rotations completed in this process.
    pub rotations: u64,
    /// Segment files deleted by retention in this process.
    pub segments_deleted: u64,
}

// ---- fault state ----

fn killed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "failpoint: killed")
}

fn enospc() -> io::Error {
    io::Error::other("failpoint: injected ENOSPC (no space left on device)")
}

fn eio(what: &str) -> io::Error {
    io::Error::other(format!("failpoint: injected transient EIO on {what}"))
}

fn in_window(window: Option<(u64, u64)>, attempt: u64) -> bool {
    window.is_some_and(|(first, count)| attempt >= first && attempt < first.saturating_add(count))
}

/// Mutable fault-injection state, shared across all segment files of
/// one log. Crash-style faults set `dead`, after which every operation
/// fails forever — the process's view of the disk is frozen, as after a
/// crash.
struct Faults {
    plan: FaultPlan,
    /// Logical byte offset of the next write (starts at the recovered
    /// chain length; spans segments).
    written: u64,
    /// Successful appends in this process.
    appends: u64,
    /// Append attempts in this process (1-based in windows).
    attempts: u64,
    /// fsync attempts in this process (1-based in windows).
    syncs: u64,
    /// Snapshot rename attempts in this process (1-based in windows).
    renames: u64,
    /// ENOSPC rejections so far.
    enospc_failures: u64,
    /// The disk-full condition has cleared.
    enospc_cleared: bool,
    /// Rotations attempted in this process.
    rotations: u64,
    /// Retention deletes completed in this process.
    deletes: u64,
    dead: bool,
}

impl Faults {
    fn new(plan: FaultPlan, recovered_len: u64) -> Faults {
        Faults {
            plan,
            written: recovered_len,
            appends: 0,
            attempts: 0,
            syncs: 0,
            renames: 0,
            enospc_failures: 0,
            enospc_cleared: false,
            rotations: 0,
            deletes: 0,
            dead: false,
        }
    }
}

/// Writes one frame through the fault plan (if any).
fn write_frame(file: &mut File, faults: Option<&mut Faults>, frame: &[u8]) -> io::Result<()> {
    let Some(f) = faults else {
        return file.write_all(frame);
    };
    if f.dead {
        return Err(killed());
    }
    f.attempts += 1;
    if in_window(f.plan.eio_appends, f.attempts) {
        return Err(eio("append"));
    }
    if let Some(bound) = f.plan.enospc_after_bytes {
        if !f.enospc_cleared && f.written + frame.len() as u64 > bound {
            f.enospc_failures += 1;
            if f.plan
                .enospc_clear_after
                .is_some_and(|n| f.enospc_failures >= n)
            {
                f.enospc_cleared = true;
            }
            return Err(enospc());
        }
    }
    let mut data = frame.to_vec();
    if let Some((off, bit)) = f.plan.flip_bit_at {
        if off >= f.written && off < f.written + data.len() as u64 {
            data[(off - f.written) as usize] ^= 1 << (bit % 8);
        }
    }
    if let Some(k) = f.plan.kill_at_byte {
        if f.written + data.len() as u64 > k {
            let keep = k.saturating_sub(f.written) as usize;
            // Persist the torn prefix, then die.
            file.write_all(&data[..keep])?;
            file.sync_data().ok();
            f.dead = true;
            return Err(killed());
        }
    }
    file.write_all(&data)?;
    f.written += data.len() as u64;
    f.appends += 1;
    Ok(())
}

/// fsyncs one file through the fault plan (if any).
fn sync_file(file: &mut File, faults: Option<&mut Faults>) -> io::Result<()> {
    let Some(f) = faults else {
        return file.sync_data();
    };
    if f.dead {
        return Err(killed());
    }
    f.syncs += 1;
    if in_window(f.plan.eio_syncs, f.syncs) {
        return Err(eio("fsync"));
    }
    if let Some(n) = f.plan.kill_sync_at_append {
        if f.appends >= n {
            // The record's bytes are already in the file (flush them, to
            // be faithful to "crash after write, before ack"), but the
            // caller never sees a success.
            file.sync_data().ok();
            f.dead = true;
            return Err(killed());
        }
    }
    file.sync_data()
}

/// Best-effort directory fsync (makes created/removed entries durable).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
}

// ---- the log ----

/// A sealed (read-only, complete) segment in the live chain.
struct SealedSeg {
    first_seq: u64,
    last_seq: u64,
    len: u64,
}

struct Inner {
    dir: PathBuf,
    /// The active segment file, positioned at its end.
    file: File,
    /// First sequence number of the active segment (its name).
    active_first: u64,
    /// Byte length of the active segment.
    active_len: u64,
    /// Records in the active segment.
    active_records: u64,
    /// Sealed segments, oldest first.
    sealed: Vec<SealedSeg>,
    /// Last assigned sequence number.
    seq: u64,
    policy: FsyncPolicy,
    /// Records appended since the last fsync (for `EveryN`).
    unsynced: u32,
    /// Epoch of the most recent snapshot (0 = none).
    snapshot_epoch: u64,
    segment_bytes: u64,
    segment_records: u64,
    keep_segments: Option<u64>,
    faults: Option<Faults>,
    rotations: u64,
    segments_deleted: u64,
    /// Set when a failed append left bytes on disk past `active_len`
    /// and the repair (truncate back to `active_len`) itself failed:
    /// further appends would land after garbage, so they are refused
    /// until the process restarts and recovery truncates the tail.
    poisoned: bool,
}

/// The append-only record log. Thread-safe; appends are serialized by an
/// internal lock, so callers holding their own state locks across
/// [`Wal::append`] get WAL order == apply order.
pub struct Wal {
    inner: Mutex<Inner>,
}

/// Path of the segment whose first record has sequence `first_seq`.
pub fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

/// Path of the first log segment inside `dir` — the whole log for a log
/// that has never rotated.
pub fn log_path(dir: &Path) -> PathBuf {
    segment_path(dir, 1)
}

/// Path of the snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

/// Parses `wal-<first_seq>.log` back into `first_seq`.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse::<u64>()
        .ok()
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir`, validates the
    /// segment chain, and truncates it to the longest valid record
    /// prefix. Returns the log positioned for appending plus everything
    /// recovered. Stale `snapshot.tmp` files are removed and a legacy
    /// single-file `wal.log` is migrated to the segmented layout.
    pub fn open(dir: &Path, cfg: &WalConfig) -> Result<(Wal, RecoveredLog), WalError> {
        fs::create_dir_all(dir)?;
        // A crash between writing snapshot.tmp and renaming it leaves
        // the temp file behind; it is not a snapshot, so remove it.
        let tmp = dir.join("snapshot.tmp");
        match fs::remove_file(&tmp) {
            Ok(()) => sync_dir(dir),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let snapshot = read_snapshot(&snapshot_path(dir));
        let snapshot_epoch = snapshot.as_ref().map(|s| s.epoch).unwrap_or(0);

        // Discover the segment chain (and migrate a legacy single-file
        // log, whose records always start at sequence 1).
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(first) = parse_segment_name(name) {
                segs.push((first, entry.path()));
            }
        }
        let legacy = dir.join("wal.log");
        if legacy.exists() {
            if !segs.is_empty() {
                return Err(WalError::Corrupt(
                    "both legacy wal.log and segmented wal-*.log files present".into(),
                ));
            }
            let first = segment_path(dir, 1);
            fs::rename(&legacy, &first)?;
            sync_dir(dir);
            segs.push((1, first));
        }
        segs.sort_by_key(|(first, _)| *first);

        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut bytes_discarded = 0u64;
        let mut tail = TailState::Clean;
        let mut sealed: Vec<SealedSeg> = Vec::new();
        let (mut active_first, mut active_path, mut active_valid_len, mut active_records);
        let mut segments;

        if segs.is_empty() {
            // Fresh log: the next record is snapshot_epoch + 1, so the
            // first segment is named after it.
            let first = snapshot_epoch + 1;
            let path = segment_path(dir, first);
            File::create(&path)?;
            sync_dir(dir);
            active_first = first;
            active_path = path;
            active_valid_len = 0;
            active_records = 0;
            segments = 1u64;
        } else {
            if segs[0].0 > snapshot_epoch + 1 {
                return Err(WalError::Corrupt(format!(
                    "log prefix missing: first segment starts at seq {} but snapshot epoch is {}",
                    segs[0].0, snapshot_epoch
                )));
            }
            // Walk the chain; stop at the first torn/corrupt tail or
            // sequence gap. `per_seg[i]` = (records, valid_len).
            let mut chain_end = segs.len() - 1;
            let mut last_records = 0u64;
            let mut last_valid_len = 0u64;
            let mut next_expected = segs[0].0;
            for (i, (first, path)) in segs.iter().enumerate() {
                if *first != next_expected {
                    // Gap or overlap between segments: impossible via
                    // this crate's rotation, so classify as corruption
                    // and cut the chain at the previous segment.
                    tail = TailState::Corrupt;
                    chain_end = i - 1;
                    break;
                }
                let bytes = fs::read(path)?;
                let scan = scan_segment(&bytes, *first);
                bytes_discarded += bytes.len() as u64 - scan.valid_len;
                next_expected = *first + scan.records.len() as u64;
                last_records = scan.records.len() as u64;
                last_valid_len = scan.valid_len;
                records.extend(scan.records);
                chain_end = i;
                if scan.tail != TailState::Clean {
                    tail = scan.tail;
                    break;
                }
            }
            // Segments past the chain end are unreachable (their records
            // would follow a hole); delete them.
            let mut dropped = false;
            for (_, path) in &segs[chain_end + 1..] {
                bytes_discarded += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(path)?;
                dropped = true;
            }
            if dropped {
                sync_dir(dir);
            }
            // Rebuild sealed-segment metadata from the record walk: the
            // boundaries are the segment names.
            let names: Vec<u64> = segs[..=chain_end].iter().map(|(f, _)| *f).collect();
            for (i, &first) in names.iter().enumerate().take(chain_end) {
                let next_first = names[i + 1];
                let seg_len = frames_len(&records, first, next_first);
                sealed.push(SealedSeg {
                    first_seq: first,
                    last_seq: next_first - 1,
                    len: seg_len,
                });
            }
            active_first = segs[chain_end].0;
            active_path = segs[chain_end].1.clone();
            active_valid_len = last_valid_len;
            active_records = last_records;
            segments = (chain_end + 1) as u64;
        }

        // A durable snapshot can cover sequences the chain no longer
        // physically holds: a crash may lose an unsynced tail
        // (`EveryN`/`Never` fsync policy, a torn write, a CRC-cut
        // record) that the snapshot had already captured. Appending
        // into the surviving segment would place seq `epoch + 1` at a
        // position where the name-based contiguity invariant (record
        // `i` of segment `f` carries seq `f + i`) cannot hold, so the
        // NEXT recovery would classify the chain as corrupt there and
        // discard acknowledged records. Every surviving record is
        // `<= epoch` and therefore redundant with the snapshot: drop
        // the chain and re-anchor a fresh active segment at
        // `epoch + 1`. (A crash mid-deletion leaves either a shorter
        // chain — re-anchored again next open — or no segments, which
        // takes the fresh-log path above.)
        let physical_last = records
            .last()
            .map(|(s, _)| *s)
            .unwrap_or(active_first.saturating_sub(1));
        let reanchored = snapshot_epoch > physical_last;
        if reanchored {
            for seg in sealed.drain(..) {
                fs::remove_file(segment_path(dir, seg.first_seq))?;
            }
            fs::remove_file(&active_path)?;
            sync_dir(dir);
            active_first = snapshot_epoch + 1;
            active_path = segment_path(dir, active_first);
            active_valid_len = 0;
            active_records = 0;
            segments = 1;
        }

        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&active_path)?;
        file.set_len(active_valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(active_valid_len))?;
        if reanchored {
            sync_dir(dir);
        }

        let last_seq = records
            .last()
            .map(|(s, _)| *s)
            .unwrap_or(active_first.saturating_sub(1))
            .max(snapshot_epoch);
        let total_len = sealed.iter().map(|s| s.len).sum::<u64>() + active_valid_len;
        let report = RecoveryReport {
            records_applied: records.len() as u64,
            bytes_discarded,
            corruption_detected: tail == TailState::Corrupt,
            tail,
            snapshot_epoch: snapshot.as_ref().map(|s| s.epoch),
            last_seq,
            segments,
        };
        let faults = cfg.fault.clone().map(|plan| Faults::new(plan, total_len));
        let wal = Wal {
            inner: Mutex::new(Inner {
                dir: dir.to_path_buf(),
                file,
                active_first,
                active_len: active_valid_len,
                active_records,
                sealed,
                seq: last_seq,
                policy: cfg.fsync,
                unsynced: 0,
                snapshot_epoch,
                segment_bytes: cfg.segment_bytes.max(1),
                segment_records: cfg.segment_records.max(1),
                keep_segments: cfg.keep_segments,
                faults,
                rotations: 0,
                segments_deleted: 0,
                poisoned: false,
            }),
        };
        Ok((
            wal,
            RecoveredLog {
                snapshot,
                records,
                report,
            },
        ))
    }

    /// Appends one record and returns its sequence number. The record is
    /// flushed according to the fsync policy. A clean failure
    /// ([`WalError::Io`]) consumes no sequence number; a post-write
    /// fsync failure surfaces as [`WalError::Unsynced`] and *does*
    /// consume the sequence number (the record is on disk).
    pub fn append(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if inner.poisoned {
            return Err(WalError::Io(io::Error::other(
                "wal poisoned: could not restore the active segment after a partial append",
            )));
        }
        let seq = inner.seq + 1;
        let frame = encode_frame(seq, payload);
        if inner.active_records > 0
            && (inner.active_len + frame.len() as u64 > inner.segment_bytes
                || inner.active_records >= inner.segment_records)
        {
            rotate(inner)?;
        }
        if let Err(e) = write_frame(&mut inner.file, inner.faults.as_mut(), &frame) {
            // A real `write_all` failure can leave a partial frame on
            // disk with the cursor advanced past it; a later successful
            // append would then land after garbage and recovery would
            // truncate at the garbage, losing that later record.
            // Restore the segment to its pre-append state so the
            // failure really is clean. A simulated crash (dead
            // failpoint) skips the repair — the "process" is gone and
            // the torn bytes ARE the crash signature. If the repair
            // itself fails the log is poisoned: every later append is
            // refused rather than written after garbage.
            let simulated_crash = inner.faults.as_ref().is_some_and(|f| f.dead);
            if !simulated_crash {
                let repaired = inner.file.set_len(inner.active_len).and_then(|()| {
                    inner
                        .file
                        .seek(SeekFrom::Start(inner.active_len))
                        .map(|_| ())
                });
                if repaired.is_err() {
                    inner.poisoned = true;
                }
            }
            return Err(e.into());
        }
        inner.seq = seq;
        inner.active_len += frame.len() as u64;
        inner.active_records += 1;
        let sync_result = match inner.policy {
            FsyncPolicy::Always => sync_file(&mut inner.file, inner.faults.as_mut()),
            FsyncPolicy::EveryN(n) => {
                inner.unsynced += 1;
                if inner.unsynced >= n.max(1) {
                    let r = sync_file(&mut inner.file, inner.faults.as_mut());
                    if r.is_ok() {
                        inner.unsynced = 0;
                    }
                    r
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        };
        match sync_result {
            Ok(()) => Ok(seq),
            Err(error) => Err(WalError::Unsynced { seq, error }),
        }
    }

    /// Forces an fsync regardless of policy (group-commit barrier).
    pub fn sync(&self) -> Result<(), WalError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        sync_file(&mut inner.file, inner.faults.as_mut())?;
        inner.unsynced = 0;
        Ok(())
    }

    /// Last assigned sequence number.
    pub fn seq(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Total on-disk byte length of the log chain (sealed segments plus
    /// the active one).
    pub fn log_len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.sealed.iter().map(|s| s.len).sum::<u64>() + inner.active_len
    }

    /// Epoch of the most recent snapshot written or recovered (0 if
    /// none).
    pub fn snapshot_epoch(&self) -> u64 {
        self.inner.lock().snapshot_epoch
    }

    /// Records appended past the last snapshot epoch — the engine's
    /// trigger input for `snapshot_every`.
    pub fn records_since_snapshot(&self) -> u64 {
        let inner = self.inner.lock();
        inner.seq.saturating_sub(inner.snapshot_epoch)
    }

    /// Point-in-time counters for observability.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock();
        WalStats {
            segments: inner.sealed.len() as u64 + 1,
            disk_bytes: inner.sealed.iter().map(|s| s.len).sum::<u64>() + inner.active_len,
            last_seq: inner.seq,
            snapshot_epoch: inner.snapshot_epoch,
            rotations: inner.rotations,
            segments_deleted: inner.segments_deleted,
        }
    }

    /// Writes a snapshot whose payload reflects exactly the state after
    /// the last appended record. The caller must exclude concurrent
    /// appends for that to hold (the engine holds its catalog write
    /// lock). Temp-file + fsync + atomic rename + directory fsync: a
    /// crash mid-snapshot leaves the previous snapshot (or none) intact
    /// together with a log chain that still covers its suffix. Only
    /// after the new snapshot is durable does retention delete sealed
    /// segments wholly at or below the new epoch (minus the configured
    /// `keep_segments` slack).
    pub fn write_snapshot(&self, payload: &[u8]) -> Result<u64, WalError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if inner.faults.as_ref().is_some_and(|f| f.dead) {
            return Err(WalError::Io(killed()));
        }
        let epoch = inner.seq;
        let final_path = snapshot_path(&inner.dir);
        let tmp_path = inner.dir.join("snapshot.tmp");
        let mut body = Vec::with_capacity(16 + payload.len());
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
        let crc = crc32(&body);
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(SNAPSHOT_MAGIC)?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        if let Some(f) = inner.faults.as_mut() {
            f.renames += 1;
            if in_window(f.plan.eio_renames, f.renames) {
                // The temp file is left behind; the next open cleans it.
                return Err(WalError::Io(eio("snapshot rename")));
            }
        }
        fs::rename(&tmp_path, &final_path)?;
        // The rename must be durable before retention may delete any
        // segment, otherwise a crash could lose both the old chain and
        // the new snapshot.
        File::open(&inner.dir)?.sync_all()?;
        inner.snapshot_epoch = epoch;
        apply_retention(inner)?;
        Ok(epoch)
    }
}

/// Seals the active segment and starts a new one at `inner.seq + 1`.
/// On failure the in-memory chain is unchanged, so the next append
/// retries the rotation.
fn rotate(inner: &mut Inner) -> Result<(), WalError> {
    // The sealing segment's bytes must be durable before the chain
    // moves past them.
    sync_file(&mut inner.file, inner.faults.as_mut())?;
    let next_first = inner.seq + 1;
    let path = segment_path(&inner.dir, next_first);
    if let Some(f) = inner.faults.as_mut() {
        f.rotations += 1;
        if f.plan.kill_at_rotation == Some(f.rotations) {
            // Crash window: the new (empty) segment file exists on
            // disk, but the process dies before adopting it.
            let _ = File::create(&path);
            sync_dir(&inner.dir);
            f.dead = true;
            return Err(WalError::Io(killed()));
        }
    }
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)?;
    sync_dir(&inner.dir);
    inner.sealed.push(SealedSeg {
        first_seq: inner.active_first,
        last_seq: inner.seq,
        len: inner.active_len,
    });
    inner.file = file;
    inner.active_first = next_first;
    inner.active_len = 0;
    inner.active_records = 0;
    inner.rotations += 1;
    Ok(())
}

/// Deletes sealed segments wholly covered by the current snapshot epoch
/// (minus the configured slack), oldest first so the chain stays
/// contiguous. A real delete failure stops quietly — the next snapshot
/// retries; the kill-at-retention failpoint crashes after its n-th
/// delete.
fn apply_retention(inner: &mut Inner) -> Result<(), WalError> {
    let Some(keep) = inner.keep_segments else {
        return Ok(());
    };
    let epoch = inner.snapshot_epoch;
    let deletable = inner
        .sealed
        .iter()
        .take_while(|s| s.last_seq <= epoch)
        .count();
    let n = deletable.saturating_sub(keep as usize);
    let mut removed = false;
    for _ in 0..n {
        let path = segment_path(&inner.dir, inner.sealed[0].first_seq);
        if fs::remove_file(&path).is_err() {
            break;
        }
        inner.sealed.remove(0);
        inner.segments_deleted += 1;
        removed = true;
        if let Some(f) = inner.faults.as_mut() {
            f.deletes += 1;
            if f.plan.kill_at_retention == Some(f.deletes) {
                sync_dir(&inner.dir);
                f.dead = true;
                return Err(WalError::Io(killed()));
            }
        }
    }
    if removed {
        sync_dir(&inner.dir);
    }
    Ok(())
}

// ---- framing / scanning ----

fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = SEQ_LEN + payload.len();
    let mut frame = Vec::with_capacity(HEADER_LEN + body_len);
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0; 4]); // crc placeholder
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[HEADER_LEN..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Total framed length of records in `[first, next_first)` — used to
/// reconstruct sealed-segment byte lengths from a recovery walk.
fn frames_len(records: &[(u64, Vec<u8>)], first: u64, next_first: u64) -> u64 {
    records
        .iter()
        .filter(|(s, _)| *s >= first && *s < next_first)
        .map(|(_, p)| (HEADER_LEN + SEQ_LEN + p.len()) as u64)
        .sum()
}

struct Scan {
    records: Vec<(u64, Vec<u8>)>,
    valid_len: u64,
    tail: TailState,
}

/// Walks one segment's raw bytes and returns its longest valid record
/// prefix. Record `i` must carry sequence `first_seq + i`; a mismatch
/// is classified as corruption (the writer assigns contiguous
/// sequences).
fn scan_segment(bytes: &[u8], first_seq: u64) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut tail = TailState::Clean;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < HEADER_LEN {
            tail = TailState::Torn;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len < SEQ_LEN as u32 || len > MAX_BODY_LEN {
            // A length that no writer could have produced: the header
            // itself is corrupt.
            tail = TailState::Corrupt;
            break;
        }
        let body_len = len as usize;
        if remaining - HEADER_LEN < body_len {
            tail = TailState::Torn;
            break;
        }
        let body = &bytes[offset + HEADER_LEN..offset + HEADER_LEN + body_len];
        if crc32(body) != crc {
            tail = TailState::Corrupt;
            break;
        }
        let seq = u64::from_le_bytes(body[..SEQ_LEN].try_into().unwrap());
        if seq != first_seq + records.len() as u64 {
            tail = TailState::Corrupt;
            break;
        }
        records.push((seq, body[SEQ_LEN..].to_vec()));
        offset += HEADER_LEN + body_len;
    }
    Scan {
        records,
        valid_len: offset as u64,
        tail,
    }
}

/// Reads and validates a snapshot file; any defect (missing, torn,
/// corrupt) yields `None` — the caller falls back to replaying whatever
/// the log chain still covers.
fn read_snapshot(path: &Path) -> Option<SnapshotData> {
    let mut f = File::open(path).ok()?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 8 + 4 + 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != crc {
        return None;
    }
    let epoch = u64::from_le_bytes(body[..8].try_into().unwrap());
    let payload_len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
    if body.len() - 16 != payload_len {
        return None;
    }
    Some(SnapshotData {
        epoch,
        payload: body[16..].to_vec(),
    })
}

/// CRC-32 (IEEE 802.3, reflected, init/final `0xFFFF_FFFF`) — the same
/// polynomial as zlib. Table-driven, built at first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cryptdb-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_default(dir: &Path) -> (Wal, RecoveredLog) {
        Wal::open(dir, &WalConfig::default()).unwrap()
    }

    fn segment_files(dir: &Path) -> Vec<u64> {
        let mut v: Vec<u64> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| parse_segment_name(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn crc32_known_vector() {
        // zlib's canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let (wal, rec) = open_default(&dir);
            assert_eq!(rec.records.len(), 0);
            assert_eq!(wal.append(b"alpha").unwrap(), 1);
            assert_eq!(wal.append(b"beta").unwrap(), 2);
            assert_eq!(wal.append(b"").unwrap(), 3);
        }
        let (wal, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![
                (1, b"alpha".to_vec()),
                (2, b"beta".to_vec()),
                (3, Vec::new())
            ]
        );
        assert_eq!(rec.report.tail, TailState::Clean);
        assert_eq!(rec.report.bytes_discarded, 0);
        assert_eq!(rec.report.last_seq, 3);
        assert_eq!(rec.report.segments, 1);
        // Appends continue the sequence.
        assert_eq!(wal.append(b"gamma").unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_reusable() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"keep-me").unwrap();
            wal.append(b"torn-record").unwrap();
        }
        let path = log_path(&dir);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        let (wal, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"keep-me".to_vec())]);
        assert_eq!(rec.report.tail, TailState::Torn);
        assert!(rec.report.bytes_discarded > 0);
        assert!(!rec.report.corruption_detected);
        // The file was truncated to the valid prefix and keeps working.
        assert_eq!(wal.append(b"after-recovery").unwrap(), 2);
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"keep-me".to_vec()), (2, b"after-recovery".to_vec())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_not_replayed() {
        let dir = tmpdir("flip");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload bit inside the second record.
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"first".to_vec())]);
        assert!(rec.report.corruption_detected);
        assert_eq!(rec.report.tail, TailState::Corrupt);
        assert!(rec.report.bytes_discarded > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_and_epoch_filtering_inputs() {
        let dir = tmpdir("snap");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            assert_eq!(wal.write_snapshot(b"STATE@2").unwrap(), 2);
            assert_eq!(wal.snapshot_epoch(), 2);
            wal.append(b"three").unwrap();
            assert_eq!(wal.records_since_snapshot(), 1);
        }
        let (_, rec) = open_default(&dir);
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.payload, b"STATE@2");
        assert_eq!(rec.report.snapshot_epoch, Some(2));
        // Everything stayed in one segment, so all records are still
        // handed back; the engine filters by epoch.
        assert_eq!(rec.records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_unsynced_tail_below_snapshot_epoch_reanchors_the_chain() {
        // Under `EveryN`/`Never` a crash can lose an unsynced record
        // tail that a durable snapshot already covers (the kill-style
        // failpoints cannot drop page-cache bytes, so the loss is
        // simulated by truncating the segment between opens). Recovery
        // must then re-anchor a fresh segment at epoch + 1: appending
        // into the surviving segment would break the name-based
        // contiguity invariant and the NEXT recovery would discard the
        // acknowledged post-crash records as corrupt.
        let dir = tmpdir("losttail");
        let cfg = WalConfig {
            fsync: FsyncPolicy::EveryN(100),
            ..WalConfig::default()
        };
        let synced_len;
        {
            let (wal, _) = Wal::open(&dir, &cfg).unwrap();
            for i in 0..6u32 {
                wal.append(format!("pre-{i}").as_bytes()).unwrap();
            }
            synced_len = wal.log_len();
            for i in 6..10u32 {
                wal.append(format!("tail-{i}").as_bytes()).unwrap();
            }
            assert_eq!(wal.write_snapshot(b"STATE@10").unwrap(), 10);
        }
        // The crash: records 7..=10 never hit the platter.
        let seg = OpenOptions::new().write(true).open(log_path(&dir)).unwrap();
        seg.set_len(synced_len).unwrap();
        drop(seg);

        let (wal, rec) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(rec.report.last_seq, 10, "epoch holds the watermark");
        assert_eq!(rec.report.snapshot_epoch, Some(10));
        assert!(!rec.report.corruption_detected);
        assert_eq!(segment_files(&dir), vec![11], "re-anchored at epoch + 1");
        assert_eq!(wal.append(b"after-crash").unwrap(), 11);
        wal.sync().unwrap();
        drop(wal);

        let (_, rec) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(rec.report.tail, TailState::Clean);
        assert!(!rec.report.corruption_detected);
        assert_eq!(rec.report.last_seq, 11);
        assert!(
            rec.records.contains(&(11, b"after-crash".to_vec())),
            "the acknowledged post-crash record survives its own reopen"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_ignored_full_log_replay_possible() {
        let dir = tmpdir("snapbad");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"one").unwrap();
            wal.write_snapshot(b"STATE").unwrap();
            wal.append(b"two").unwrap();
        }
        let path = snapshot_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = open_default(&dir);
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.report.snapshot_epoch, None);
        assert_eq!(rec.records.len(), 2, "log replay covers everything");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_kill_at_byte_tears_the_log() {
        let dir = tmpdir("killbyte");
        // First, learn the clean length of two records.
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"record-one").unwrap();
            wal.append(b"record-two").unwrap();
        }
        let clean_len = fs::metadata(log_path(&dir)).unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        // Now kill mid-second-record.
        let cfg = WalConfig {
            fault: Some(FaultPlan::kill_at(clean_len - 3)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"record-one").unwrap();
        assert!(wal.append(b"record-two").is_err(), "append crossing kill");
        assert!(wal.append(b"record-three").is_err(), "stream is dead");
        assert!(wal.sync().is_err(), "sync is dead too");
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"record-one".to_vec())]);
        assert_eq!(rec.report.tail, TailState::Torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_sync_kill_leaves_record_durable_but_unacked() {
        let dir = tmpdir("killsync");
        let cfg = WalConfig {
            fault: Some(FaultPlan::kill_sync_after(2)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"acked").unwrap();
        // Fully written, but the fsync (and thus the ack) fails — and
        // the error says the sequence number was consumed.
        match wal.append(b"durable-unacked") {
            Err(WalError::Unsynced { seq: 2, .. }) => {}
            other => panic!("expected Unsynced for seq 2, got {other:?}"),
        }
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"acked".to_vec()), (2, b"durable-unacked".to_vec())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_flip_bit_produces_detectable_corruption() {
        let dir = tmpdir("flipwrite");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"aaaa").unwrap();
        }
        let first_len = fs::metadata(log_path(&dir)).unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        let cfg = WalConfig {
            // Flip a bit inside the second record's payload.
            fault: Some(FaultPlan::flip_bit(first_len + HEADER_LEN as u64 + 9, 3)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"aaaa").unwrap();
        // The flip is silent: the append "succeeds".
        wal.append(b"bbbb").unwrap();
        wal.append(b"cccc").unwrap();
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records, vec![(1, b"aaaa".to_vec())]);
        assert!(rec.report.corruption_detected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_groups_commits() {
        let dir = tmpdir("everyn");
        let cfg = WalConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for i in 0..7u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.records.len(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    // ---- segmented-log tests ----

    fn small_segments(fault: Option<FaultPlan>) -> WalConfig {
        WalConfig {
            segment_bytes: 64,
            fault,
            ..WalConfig::default()
        }
    }

    #[test]
    fn rotation_seals_segments_and_recovery_spans_them() {
        let dir = tmpdir("rotate");
        {
            let (wal, _) = Wal::open(&dir, &small_segments(None)).unwrap();
            for i in 0..20u8 {
                wal.append(&[i; 20]).unwrap();
            }
            let stats = wal.stats();
            assert!(stats.segments > 1, "expected rotation, got {stats:?}");
            assert!(stats.rotations > 0);
            assert_eq!(stats.last_seq, 20);
            // log_len spans the chain, not just the active segment.
            assert_eq!(wal.log_len(), 20 * (HEADER_LEN + SEQ_LEN + 20) as u64);
        }
        assert!(segment_files(&dir).len() > 1);
        let (wal, rec) = Wal::open(&dir, &small_segments(None)).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(rec.report.last_seq, 20);
        assert!(rec.report.segments > 1);
        assert_eq!(rec.report.tail, TailState::Clean);
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(payload, &vec![i as u8; 20]);
        }
        // The sequence continues across the reopen.
        assert_eq!(wal.append(b"next").unwrap(), 21);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_records_bound_also_rotates() {
        let dir = tmpdir("rotrecs");
        let cfg = WalConfig {
            segment_records: 3,
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for _ in 0..7 {
            wal.append(b"x").unwrap();
        }
        assert_eq!(wal.stats().segments, 3);
        drop(wal);
        assert_eq!(segment_files(&dir), vec![1, 4, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_deletes_segments_below_epoch_and_bounds_disk() {
        let dir = tmpdir("retain");
        let cfg = WalConfig {
            segment_bytes: 64,
            keep_segments: Some(0),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 20]).unwrap();
        }
        let before = wal.log_len();
        assert!(wal.stats().segments > 5);
        wal.write_snapshot(b"STATE@20").unwrap();
        let stats = wal.stats();
        assert_eq!(stats.segments, 1, "only the active segment survives");
        assert!(stats.segments_deleted > 0);
        assert!(wal.log_len() < before);
        wal.append(b"after-snapshot").unwrap();
        drop(wal);
        // Recovery = snapshot + suffix; deleted records are covered by
        // the snapshot epoch.
        let (_, rec) = Wal::open(&dir, &cfg).unwrap();
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.epoch, 20);
        let first = rec.records.first().map(|(s, _)| *s).expect("suffix");
        assert!(rec
            .records
            .iter()
            .enumerate()
            .all(|(i, (s, _))| *s == first + i as u64));
        assert_eq!(rec.report.last_seq, 21);
        assert_eq!(
            rec.records.last().map(|(s, _)| *s),
            Some(21),
            "post-snapshot suffix replayed"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_segments_none_disables_retention() {
        let dir = tmpdir("keepall");
        let cfg = WalConfig {
            segment_bytes: 64,
            keep_segments: None,
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 20]).unwrap();
        }
        let segs_before = wal.stats().segments;
        wal.write_snapshot(b"STATE").unwrap();
        assert_eq!(wal.stats().segments, segs_before);
        assert_eq!(wal.stats().segments_deleted, 0);
        drop(wal);
        // Full-chain replay still possible even if the snapshot dies.
        fs::remove_file(snapshot_path(&dir)).unwrap();
        let (_, rec) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(rec.records.len(), 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_segments_slack_is_respected() {
        let dir = tmpdir("slack");
        let cfg = WalConfig {
            segment_records: 2,
            keep_segments: Some(2),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for _ in 0..9 {
            wal.append(b"r").unwrap();
        }
        // 5 segments: [1,2] [3,4] [5,6] [7,8] [9...]. Snapshot at 9
        // makes 4 sealed ones deletable; slack keeps the newest 2.
        wal.write_snapshot(b"S").unwrap();
        assert_eq!(wal.stats().segments, 3);
        assert_eq!(wal.stats().segments_deleted, 2);
        assert_eq!(segment_files(&dir), vec![5, 7, 9]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_rotation_leaves_recoverable_chain() {
        let dir = tmpdir("rotkill");
        let cfg = small_segments(Some(FaultPlan::kill_at_rotation(2)));
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        let mut acked = Vec::new();
        for i in 0..20u8 {
            match wal.append(&[i; 20]) {
                Ok(seq) => acked.push(seq),
                Err(e) => {
                    assert!(e.to_string().contains("failpoint"), "{e}");
                    break;
                }
            }
        }
        assert!(!acked.is_empty());
        assert!(wal.append(b"x").is_err(), "stream dead after crash");
        drop(wal);
        // The empty just-created segment is a valid chain tail; every
        // acked record survives.
        let (wal, rec) = Wal::open(&dir, &small_segments(None)).unwrap();
        assert_eq!(rec.records.len(), acked.len());
        assert_eq!(rec.report.last_seq, *acked.last().unwrap());
        assert_eq!(rec.report.tail, TailState::Clean);
        // And the log keeps accepting appends at the right sequence.
        assert_eq!(wal.append(b"resume").unwrap(), acked.last().unwrap() + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_retention_recovers_and_next_snapshot_cleans_up() {
        let dir = tmpdir("retkill");
        let cfg = WalConfig {
            segment_records: 2,
            keep_segments: Some(0),
            fault: Some(FaultPlan::kill_at_retention(1)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        for _ in 0..9 {
            wal.append(b"r").unwrap();
        }
        // The snapshot itself lands, then retention crashes after one
        // delete.
        let err = wal.write_snapshot(b"S@9").unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        drop(wal);
        // Recovery: snapshot is durable, remaining chain covers the
        // suffix.
        let cfg2 = WalConfig {
            segment_records: 2,
            keep_segments: Some(0),
            ..WalConfig::default()
        };
        let (wal, rec) = Wal::open(&dir, &cfg2).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().epoch, 9);
        assert_eq!(rec.report.last_seq, 9);
        wal.append(b"more").unwrap();
        // The next successful snapshot finishes the interrupted
        // retention.
        wal.write_snapshot(b"S@10").unwrap();
        assert_eq!(wal.stats().segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_rejects_cleanly_then_clears() {
        let dir = tmpdir("enospc");
        let frame = (HEADER_LEN + SEQ_LEN + 4) as u64;
        let cfg = WalConfig {
            fault: Some(FaultPlan::enospc_clearing(2 * frame, 3)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(wal.append(b"aaaa").unwrap(), 1);
        assert_eq!(wal.append(b"bbbb").unwrap(), 2);
        // Disk full: clean rejections, no sequence consumed, stream
        // alive.
        for _ in 0..3 {
            let err = wal.append(b"cccc").unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("failpoint") && msg.contains("ENOSPC"), "{msg}");
            assert_eq!(wal.seq(), 2);
        }
        // After 3 rejections the fault clears; the sequence continues
        // with no gap.
        assert_eq!(wal.append(b"dddd").unwrap(), 3);
        assert!(wal.sync().is_ok(), "stream never died");
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "no gap, no torn bytes"
        );
        assert_eq!(rec.report.tail, TailState::Clean);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_eio_on_append_skips_no_sequence() {
        let dir = tmpdir("eioapp");
        let cfg = WalConfig {
            fault: Some(FaultPlan::eio_on_appends(2, 1)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(wal.append(b"one").unwrap(), 1);
        let err = wal.append(b"two").unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        assert!(matches!(err, WalError::Io(_)), "clean failure class");
        // The retry gets the sequence the failed attempt never
        // consumed.
        assert_eq!(wal.append(b"two-retry").unwrap(), 2);
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"one".to_vec()), (2, b"two-retry".to_vec())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_eio_on_sync_surfaces_as_unsynced() {
        let dir = tmpdir("eiosync");
        let cfg = WalConfig {
            fault: Some(FaultPlan::eio_on_syncs(2, 1)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(wal.append(b"one").unwrap(), 1);
        match wal.append(b"two") {
            Err(WalError::Unsynced { seq: 2, error }) => {
                assert!(error.to_string().contains("failpoint"), "{error}");
            }
            other => panic!("expected Unsynced for seq 2, got {other:?}"),
        }
        // The stream stays alive and the sequence moved past the
        // written-but-unsynced record.
        assert_eq!(wal.append(b"three").unwrap(), 3);
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(
            rec.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "the unsynced record is on disk"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_eio_on_rename_keeps_old_snapshot_and_tmp_is_cleaned() {
        let dir = tmpdir("eiorename");
        let cfg = WalConfig {
            fault: Some(FaultPlan::eio_on_renames(2, 1)),
            ..WalConfig::default()
        };
        let (wal, _) = Wal::open(&dir, &cfg).unwrap();
        wal.append(b"one").unwrap();
        wal.write_snapshot(b"S@1").unwrap();
        wal.append(b"two").unwrap();
        let err = wal.write_snapshot(b"S@2").unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
        assert_eq!(wal.snapshot_epoch(), 1, "epoch unchanged on failure");
        assert!(dir.join("snapshot.tmp").exists(), "tmp left behind");
        // Retry succeeds (the window passed).
        assert_eq!(wal.write_snapshot(b"S@2").unwrap(), 2);
        drop(wal);
        let (_, rec) = open_default(&dir);
        assert_eq!(rec.snapshot.unwrap().epoch, 2);
        assert!(!dir.join("snapshot.tmp").exists(), "open cleans tmp");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_tmp_is_removed_at_open() {
        let dir = tmpdir("staletmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("snapshot.tmp"), b"half-written garbage").unwrap();
        let (_, rec) = open_default(&dir);
        assert!(!dir.join("snapshot.tmp").exists());
        assert!(rec.snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_log_prefix_is_an_error() {
        let dir = tmpdir("noprefix");
        let cfg = WalConfig {
            segment_records: 2,
            keep_segments: None,
            ..WalConfig::default()
        };
        {
            let (wal, _) = Wal::open(&dir, &cfg).unwrap();
            for _ in 0..5 {
                wal.append(b"r").unwrap();
            }
        }
        // No snapshot covers seqs 1-2; deleting their segment breaks
        // recovery and must be loud, not silent data loss.
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        match Wal::open(&dir, &cfg) {
            Err(WalError::Corrupt(m)) => assert!(m.contains("prefix missing"), "{m}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chain_gap_cuts_recovery_at_the_gap() {
        let dir = tmpdir("gap");
        let cfg = WalConfig {
            segment_records: 2,
            keep_segments: None,
            ..WalConfig::default()
        };
        {
            let (wal, _) = Wal::open(&dir, &cfg).unwrap();
            for _ in 0..7 {
                wal.append(b"r").unwrap();
            }
        }
        // Segments: [1,2] [3,4] [5,6] [7]. Remove the middle one.
        fs::remove_file(segment_path(&dir, 3)).unwrap();
        let (wal, rec) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(rec.records.len(), 2, "only seqs 1-2 are reachable");
        assert!(rec.report.corruption_detected);
        assert!(rec.report.bytes_discarded > 0);
        // Unreachable later segments were deleted so appends can't
        // collide with them.
        assert_eq!(segment_files(&dir), vec![1]);
        assert_eq!(wal.append(b"resume").unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_log_is_migrated() {
        let dir = tmpdir("legacy");
        {
            let (wal, _) = open_default(&dir);
            wal.append(b"old-one").unwrap();
            wal.append(b"old-two").unwrap();
        }
        // Re-create the pre-segmentation layout by renaming the single
        // segment back to wal.log.
        fs::rename(log_path(&dir), dir.join("wal.log")).unwrap();
        let (wal, rec) = open_default(&dir);
        assert_eq!(
            rec.records,
            vec![(1, b"old-one".to_vec()), (2, b"old-two".to_vec())]
        );
        assert!(!dir.join("wal.log").exists(), "migrated in place");
        assert!(log_path(&dir).exists());
        assert_eq!(wal.append(b"new").unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
