//! Property tests for the recovery invariant: for ANY truncation, torn
//! tail, or single-bit corruption of the log file, recovery yields
//! exactly the longest valid record prefix, reports what it discarded in
//! a structured [`RecoveryReport`], and never panics.

use cryptdb_wal::{log_path, TailState, Wal, WalConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cryptdb-wal-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Writes `payloads` through a fresh log and returns, per record, the
/// exclusive end offset of its frame in the file.
fn write_log(dir: &Path, payloads: &[Vec<u8>]) -> Vec<u64> {
    let (wal, _) = Wal::open(dir, &WalConfig::default()).unwrap();
    let mut ends = Vec::with_capacity(payloads.len());
    for p in payloads {
        wal.append(p).unwrap();
        ends.push(wal.log_len());
    }
    ends
}

/// Number of full records that fit in the first `len` bytes.
fn records_within(ends: &[u64], len: u64) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

fn recover(dir: &Path) -> cryptdb_wal::RecoveredLog {
    let (_, rec) = Wal::open(dir, &WalConfig::default()).unwrap();
    rec
}

proptest! {
    #[test]
    fn truncation_yields_longest_valid_prefix(
        payloads in vec(vec(any::<u8>(), 0..40), 1..12),
        cut_frac in 0u64..=1000,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("trunc", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let cut = total * cut_frac / 1000;
        let f = fs::OpenOptions::new().write(true).open(log_path(&dir)).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let rec = recover(&dir);
        let expect = records_within(&ends, cut);
        let valid_len = if expect == 0 { 0 } else { ends[expect - 1] };
        prop_assert_eq!(rec.records.len(), expect);
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        prop_assert_eq!(rec.report.bytes_discarded, cut - valid_len);
        prop_assert_eq!(rec.report.records_applied, expect as u64);
        prop_assert!(!rec.report.corruption_detected);
        if cut == valid_len {
            prop_assert_eq!(rec.report.tail, TailState::Clean);
        } else {
            prop_assert_eq!(rec.report.tail, TailState::Torn);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_never_replays_the_damaged_record(
        payloads in vec(vec(any::<u8>(), 0..40), 1..12),
        flip_frac in 0u64..=999,
        bit in 0u8..8,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("flip", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let off = (total * flip_frac / 1000).min(total - 1);
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[off as usize] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir);
        // The flipped byte lives inside record `hit` (0-based): every
        // record before it must replay intact, nothing at or after it may.
        let hit = records_within(&ends, off);
        prop_assert_eq!(rec.records.len(), hit, "prefix before damaged record");
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        let valid_len = if hit == 0 { 0 } else { ends[hit - 1] };
        prop_assert_eq!(rec.report.bytes_discarded, total - valid_len);
        // A flip in the length field can masquerade as a torn tail; a
        // flip anywhere else fails CRC. Either way it is not replayed.
        prop_assert!(
            rec.report.corruption_detected || rec.report.tail == TailState::Torn
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_log_keeps_accepting_appends(
        payloads in vec(vec(any::<u8>(), 0..24), 1..8),
        cut_back in 1u64..32,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("resume", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let cut = total.saturating_sub(cut_back);
        let f = fs::OpenOptions::new().write(true).open(log_path(&dir)).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (wal, rec) = Wal::open(&dir, &WalConfig::default()).unwrap();
        let kept = rec.records.len();
        let next = wal.append(b"post-recovery").unwrap();
        prop_assert_eq!(next, kept as u64 + 1);
        drop(wal);
        let rec2 = recover(&dir);
        prop_assert_eq!(rec2.records.len(), kept + 1);
        prop_assert_eq!(rec2.report.tail, TailState::Clean);
        let _ = fs::remove_dir_all(&dir);
    }
}
