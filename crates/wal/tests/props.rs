//! Property tests for the recovery invariant: for ANY truncation, torn
//! tail, or single-bit corruption of the log file, recovery yields
//! exactly the longest valid record prefix, reports what it discarded in
//! a structured [`RecoveryReport`], and never panics.

use cryptdb_wal::{log_path, TailState, Wal, WalConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cryptdb-wal-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Writes `payloads` through a fresh log and returns, per record, the
/// exclusive end offset of its frame in the file.
fn write_log(dir: &Path, payloads: &[Vec<u8>]) -> Vec<u64> {
    let (wal, _) = Wal::open(dir, &WalConfig::default()).unwrap();
    let mut ends = Vec::with_capacity(payloads.len());
    for p in payloads {
        wal.append(p).unwrap();
        ends.push(wal.log_len());
    }
    ends
}

/// Number of full records that fit in the first `len` bytes.
fn records_within(ends: &[u64], len: u64) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

fn recover(dir: &Path) -> cryptdb_wal::RecoveredLog {
    let (_, rec) = Wal::open(dir, &WalConfig::default()).unwrap();
    rec
}

proptest! {
    #[test]
    fn truncation_yields_longest_valid_prefix(
        payloads in vec(vec(any::<u8>(), 0..40), 1..12),
        cut_frac in 0u64..=1000,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("trunc", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let cut = total * cut_frac / 1000;
        let f = fs::OpenOptions::new().write(true).open(log_path(&dir)).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let rec = recover(&dir);
        let expect = records_within(&ends, cut);
        let valid_len = if expect == 0 { 0 } else { ends[expect - 1] };
        prop_assert_eq!(rec.records.len(), expect);
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        prop_assert_eq!(rec.report.bytes_discarded, cut - valid_len);
        prop_assert_eq!(rec.report.records_applied, expect as u64);
        prop_assert!(!rec.report.corruption_detected);
        if cut == valid_len {
            prop_assert_eq!(rec.report.tail, TailState::Clean);
        } else {
            prop_assert_eq!(rec.report.tail, TailState::Torn);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_never_replays_the_damaged_record(
        payloads in vec(vec(any::<u8>(), 0..40), 1..12),
        flip_frac in 0u64..=999,
        bit in 0u8..8,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("flip", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let off = (total * flip_frac / 1000).min(total - 1);
        let path = log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[off as usize] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir);
        // The flipped byte lives inside record `hit` (0-based): every
        // record before it must replay intact, nothing at or after it may.
        let hit = records_within(&ends, off);
        prop_assert_eq!(rec.records.len(), hit, "prefix before damaged record");
        for (i, (seq, payload)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        let valid_len = if hit == 0 { 0 } else { ends[hit - 1] };
        prop_assert_eq!(rec.report.bytes_discarded, total - valid_len);
        // A flip in the length field can masquerade as a torn tail; a
        // flip anywhere else fails CRC. Either way it is not replayed.
        prop_assert!(
            rec.report.corruption_detected || rec.report.tail == TailState::Torn
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// The segmented-log equivalence invariant: for ANY record stream,
    /// rotation bound, and snapshot position — including snapshots that
    /// land exactly on a rotation boundary — recovering from
    /// (snapshot + post-epoch suffix) reconstructs exactly the same
    /// record sequence as a full-chain replay of the same directory
    /// with the snapshot deleted.
    #[test]
    fn snapshot_suffix_equals_full_chain_replay_across_rotations(
        payloads in vec(vec(any::<u8>(), 0..40), 4..24),
        seg_records in 1u64..5,
        snap_frac in 0u64..=1000,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("seg", case);
        let cfg = WalConfig {
            segment_records: seg_records,
            // Retain the full chain so the control replay below has
            // every segment back to seq 1.
            keep_segments: None,
            ..WalConfig::default()
        };
        let snap_at = payloads.len() as u64 * snap_frac / 1000;
        {
            let (wal, _) = Wal::open(&dir, &cfg).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                wal.append(p).unwrap();
                if i as u64 + 1 == snap_at {
                    wal.write_snapshot(b"engine-state-at-epoch").unwrap();
                }
            }
        }

        let rec = recover(&dir);
        prop_assert_eq!(rec.report.tail, TailState::Clean);
        prop_assert!(!rec.report.corruption_detected);
        if payloads.len() as u64 > seg_records {
            prop_assert!(rec.report.segments > 1, "the record bound must rotate");
        }
        let epoch = rec.snapshot.as_ref().map_or(0, |s| s.epoch);
        prop_assert_eq!(epoch, snap_at);
        // The caller-visible suffix: records past the snapshot epoch.
        let suffix: Vec<(u64, Vec<u8>)> = rec
            .records
            .iter()
            .filter(|(s, _)| *s > epoch)
            .cloned()
            .collect();

        // Control: the same chain with the snapshot deleted replays in
        // full from seq 1.
        let full_dir = tmpdir("seg-full", case);
        fs::create_dir_all(&full_dir).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_name().to_string_lossy() == "snapshot.bin" {
                continue;
            }
            fs::copy(entry.path(), full_dir.join(entry.file_name())).unwrap();
        }
        let full = recover(&full_dir);
        prop_assert!(full.snapshot.is_none());
        prop_assert_eq!(full.records.len(), payloads.len());
        for (i, (seq, payload)) in full.records.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        // Full-chain prefix up to the epoch + the snapshot run's suffix
        // must reassemble the full record sequence byte-for-byte.
        let reconstructed: Vec<(u64, Vec<u8>)> = full
            .records
            .iter()
            .filter(|(s, _)| *s <= epoch)
            .cloned()
            .chain(suffix)
            .collect();
        prop_assert_eq!(reconstructed, full.records);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&full_dir);
    }

    #[test]
    fn recovered_log_keeps_accepting_appends(
        payloads in vec(vec(any::<u8>(), 0..24), 1..8),
        cut_back in 1u64..32,
        case in any::<u64>(),
    ) {
        let dir = tmpdir("resume", case);
        let ends = write_log(&dir, &payloads);
        let total = *ends.last().unwrap();
        let cut = total.saturating_sub(cut_back);
        let f = fs::OpenOptions::new().write(true).open(log_path(&dir)).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (wal, rec) = Wal::open(&dir, &WalConfig::default()).unwrap();
        let kept = rec.records.len();
        let next = wal.append(b"post-recovery").unwrap();
        prop_assert_eq!(next, kept as u64 + 1);
        drop(wal);
        let rec2 = recover(&dir);
        prop_assert_eq!(rec2.records.len(), kept + 1);
        prop_assert_eq!(rec2.report.tail, TailState::Clean);
        let _ = fs::remove_dir_all(&dir);
    }
}
