//! Property tests: cipher round-trips and mode invariants.

use cryptdb_crypto::blowfish::Blowfish;
use cryptdb_crypto::modes::{
    cbc_decrypt, cbc_encrypt, cmc_decrypt, cmc_encrypt, ctr_xor, pkcs7_pad, pkcs7_unpad,
};
use cryptdb_crypto::prf::derive_key;
use cryptdb_crypto::{Aes, BlockCipher};
use proptest::prelude::*;

proptest! {
    #[test]
    fn aes_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        prop_assert_ne!(b, block);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn aes256_block_roundtrip(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_256(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn blowfish_roundtrip(key in proptest::collection::vec(any::<u8>(), 1..56), v in any::<u64>()) {
        let bf = Blowfish::new(&key);
        prop_assert_eq!(bf.decrypt_u64(bf.encrypt_u64(v)), v);
    }

    #[test]
    fn cbc_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(),
                     data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let aes = Aes::new_128(&key);
        let ct = cbc_encrypt(&aes, &iv, &data);
        prop_assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), data);
    }

    #[test]
    fn cmc_roundtrip_and_deterministic(key in any::<[u8; 16]>(),
                                       data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let aes = Aes::new_128(&key);
        let c1 = cmc_encrypt(&aes, &data);
        let c2 = cmc_encrypt(&aes, &data);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(cmc_decrypt(&aes, &c1).unwrap(), data);
    }

    #[test]
    fn ctr_is_an_involution(key in any::<[u8; 16]>(), nonce in any::<[u8; 16]>(),
                            data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let aes = Aes::new_128(&key);
        let mut buf = data.clone();
        ctr_xor(&aes, &nonce, &mut buf);
        ctr_xor(&aes, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn pkcs7_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let padded = pkcs7_pad(&data, 16);
        prop_assert_eq!(padded.len() % 16, 0);
        prop_assert!(padded.len() > data.len());
        prop_assert_eq!(pkcs7_unpad(&padded, 16).unwrap(), data);
    }

    #[test]
    fn kdf_injective_on_paths(a in "[a-z]{1,10}", b in "[a-z]{1,10}") {
        let mk = [9u8; 32];
        prop_assume!(a != b);
        prop_assert_ne!(derive_key(&mk, &[&a]), derive_key(&mk, &[&b]));
        prop_assert_ne!(derive_key(&mk, &[&a, &b]), derive_key(&mk, &[&b, &a]));
    }
}
