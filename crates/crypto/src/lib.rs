//! Symmetric cryptographic primitives for CryptDB, built from first
//! principles.
//!
//! No crypto crates are available offline, so every primitive the paper
//! relies on is implemented here, with its constant tables *computed from
//! their mathematical definitions* rather than embedded (and then checked
//! against published test vectors):
//!
//! * [`sha256`] — SHA-256 (round constants from cube/square roots of primes)
//!   and HMAC-SHA256.
//! * [`aes`] — AES-128/256 (S-box from GF(2⁸) inversion + affine map).
//! * [`blowfish`] — Blowfish (P/S boxes from hex digits of π computed with
//!   Machin's formula on `cryptdb-bignum`). The paper uses Blowfish for
//!   64-bit integer values because its 64-bit block avoids AES's ciphertext
//!   expansion (§3.1).
//! * [`modes`] — CBC (RND), CTR (stream), and the paper's CMC variant
//!   (zero-IV two-pass CBC) used for DET over multi-block values.
//! * [`prf`] — PRF/KDF layer implementing the paper's Equation (1) key
//!   derivation, plus a password KDF for `external_keys`.
//! * [`authenc`] — encrypt-then-MAC authenticated encryption used to wrap
//!   principal keys in `access_keys`.
//! * [`rng`] — a deterministic AES-CTR DRBG implementing `rand::RngCore`
//!   (OPE's deterministic coins; reproducible experiments).

#![forbid(unsafe_code)]

pub mod aes;
pub mod authenc;
pub mod blowfish;
pub mod modes;
pub mod prf;
pub mod rng;
pub mod sha256;

pub use aes::Aes;
pub use blowfish::Blowfish;
pub use modes::BlockCipher;
pub use rng::Drbg;
