//! AES-128 / AES-256 block cipher.
//!
//! The S-box is computed from its definition (multiplicative inverse in
//! GF(2⁸) modulo x⁸+x⁴+x³+x+1, followed by the FIPS-197 affine map) and the
//! implementation is validated against the FIPS-197 appendix C vectors.

use crate::modes::BlockCipher;
use std::sync::OnceLock;

/// Multiplication in GF(2⁸) with the AES reduction polynomial 0x11b.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..=255u8 {
            // Multiplicative inverse (0 maps to 0).
            let inv = if x == 0 {
                0
            } else {
                (1..=255u8)
                    .find(|&y| gf_mul(x, y) == 1)
                    .expect("every nonzero element of GF(2^8) has an inverse")
            };
            let s = inv
                ^ inv.rotate_left(1)
                ^ inv.rotate_left(2)
                ^ inv.rotate_left(3)
                ^ inv.rotate_left(4)
                ^ 0x63;
            sbox[x as usize] = s;
            inv_sbox[s as usize] = x;
        }
        assert_eq!(sbox[0x00], 0x63, "AES S-box self-check failed");
        assert_eq!(sbox[0x01], 0x7c, "AES S-box self-check failed");
        Tables { sbox, inv_sbox }
    })
}

/// An AES key schedule supporting 128- and 256-bit keys.
///
/// # Examples
///
/// ```
/// use cryptdb_crypto::{Aes, BlockCipher};
///
/// let aes = Aes::new_128(&[0u8; 16]);
/// let mut block = *b"sixteen-byte-msg";
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(&block, b"sixteen-byte-msg");
/// ```
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
}

impl Aes {
    /// Expands a 128-bit key (10 rounds).
    pub fn new_128(key: &[u8; 16]) -> Self {
        Aes {
            round_keys: expand_key(key, 4, 10),
        }
    }

    /// Expands a 256-bit key (14 rounds).
    pub fn new_256(key: &[u8; 32]) -> Self {
        Aes {
            round_keys: expand_key(key, 8, 14),
        }
    }

    fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }
}

fn expand_key(key: &[u8], nk: usize, nr: usize) -> Vec<[u8; 16]> {
    let t = tables();
    let total_words = 4 * (nr + 1);
    let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
    for i in 0..nk {
        w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    let mut rcon: u8 = 1;
    for i in nk..total_words {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp = [
                t.sbox[temp[1] as usize] ^ rcon,
                t.sbox[temp[2] as usize],
                t.sbox[temp[3] as usize],
                t.sbox[temp[0] as usize],
            ];
            rcon = gf_mul(rcon, 2);
        } else if nk > 6 && i % nk == 4 {
            temp = [
                t.sbox[temp[0] as usize],
                t.sbox[temp[1] as usize],
                t.sbox[temp[2] as usize],
                t.sbox[temp[3] as usize],
            ];
        }
        let prev = w[i - nk];
        w.push([
            prev[0] ^ temp[0],
            prev[1] ^ temp[1],
            prev[2] ^ temp[2],
            prev[3] ^ temp[3],
        ]);
    }
    w.chunks_exact(4)
        .map(|c| {
            let mut rk = [0u8; 16];
            for (i, word) in c.iter().enumerate() {
                rk[4 * i..4 * i + 4].copy_from_slice(word);
            }
            rk
        })
        .collect()
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    let t = tables();
    for b in state.iter_mut() {
        *b = t.sbox[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    let t = tables();
    for b in state.iter_mut() {
        *b = t.inv_sbox[*b as usize];
    }
}

/// State is column-major: byte (row r, col c) lives at index 4c + r.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 0x0e)
            ^ gf_mul(col[1], 0x0b)
            ^ gf_mul(col[2], 0x0d)
            ^ gf_mul(col[3], 0x09);
        state[4 * c + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0e)
            ^ gf_mul(col[2], 0x0b)
            ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] = gf_mul(col[0], 0x0d)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0e)
            ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] = gf_mul(col[0], 0x0b)
            ^ gf_mul(col[1], 0x0d)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0e);
    }
}

impl BlockCipher for Aes {
    const BLOCK_SIZE: usize = 16;

    fn encrypt_block(&self, block: &mut [u8]) {
        let mut state: [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..self.rounds() {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[self.rounds()]);
        block.copy_from_slice(&state);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let mut state: [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        add_round_key(&mut state, &self.round_keys[self.rounds()]);
        for round in (1..self.rounds()).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        block.copy_from_slice(&state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_aes128_appendix_c1() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new_128(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, hex16("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256_appendix_c3() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let aes = Aes::new_256(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex16("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, hex16("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn roundtrip_many_keys() {
        for seed in 0u8..16 {
            let key = [seed; 16];
            let aes = Aes::new_128(&key);
            let mut block = [seed.wrapping_mul(7); 16];
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let t = super::tables();
        let mut seen = [false; 256];
        for &s in t.sbox.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }
}
