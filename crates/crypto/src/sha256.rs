//! SHA-256 and HMAC-SHA256.
//!
//! The round constants are *computed* as the first 32 bits of the fractional
//! parts of the cube roots of the first 64 primes (and the initial state
//! from the square roots of the first 8), exactly as FIPS 180-4 defines
//! them, using exact integer root extraction. The implementation is checked
//! against the standard `"abc"` and empty-string test vectors.

use std::sync::OnceLock;

/// Exact floor of the cube root of `n` by binary search over `u128`.
fn icbrt(n: u128) -> u128 {
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 44; // (2^44)^3 = 2^132 > n for our inputs.
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid
            .checked_mul(mid)
            .and_then(|m| m.checked_mul(mid))
            .is_some_and(|c| c <= n)
        {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Exact floor of the square root of `n` by binary search over `u128`.
fn isqrt(n: u128) -> u128 {
    let mut lo: u128 = 0;
    let mut hi: u128 = 1 << 64;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).is_some_and(|s| s <= n) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

fn first_primes(n: usize) -> Vec<u128> {
    let mut primes = Vec::with_capacity(n);
    let mut c: u128 = 2;
    while primes.len() < n {
        if primes.iter().all(|&p| !c.is_multiple_of(p)) {
            primes.push(c);
        }
        c += 1;
    }
    primes
}

/// Round constants: frac(cbrt(p_i)) · 2^32 for the first 64 primes.
fn k_table() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            // floor(cbrt(p · 2^96)) = floor(cbrt(p) · 2^32); low 32 bits are
            // the fractional part scaled by 2^32.
            k[i] = (icbrt(p << 96) & 0xffff_ffff) as u32;
        }
        assert_eq!(k[0], 0x428a_2f98, "SHA-256 K[0] self-check failed");
        k
    })
}

/// Initial hash state: frac(sqrt(p_i)) · 2^32 for the first 8 primes.
fn h_init() -> &'static [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u32; 8];
        for (i, &p) in primes.iter().enumerate() {
            h[i] = (isqrt(p << 64) & 0xffff_ffff) as u32;
        }
        assert_eq!(h[0], 0x6a09_e667, "SHA-256 H[0] self-check failed");
        h
    })
}

/// Computes the SHA-256 digest of `data`.
///
/// # Examples
///
/// ```
/// let d = cryptdb_crypto::sha256::sha256(b"abc");
/// assert_eq!(d[0], 0xba);
/// assert_eq!(d[31], 0xad);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental SHA-256 hasher.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: *h_init(),
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&rest[..64]);
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes in raw, bypassing total_len accounting.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = k_table();
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
fn hex(d: &[u8]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_input_crosses_blocks() {
        let data = vec![0x61u8; 1_000]; // 1000 'a's.
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(hex(&h.finalize()), hex(&sha256(&data)));
    }

    #[test]
    fn hmac_rfc4231_case2() {
        // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = vec![0xaau8; 131];
        let m1 = hmac_sha256(&key, b"x");
        let m2 = hmac_sha256(&sha256(&key), b"x");
        assert_eq!(m1, m2);
    }

    #[test]
    fn computed_constants_match_fips() {
        assert_eq!(k_table()[1], 0x7137_4491);
        assert_eq!(k_table()[63], 0xc671_78f2);
        assert_eq!(h_init()[7], 0x5be0_cd19);
    }
}
