//! Block cipher modes of operation: CBC, CTR, and the paper's CMC variant.
//!
//! §3.1 of the paper assigns modes to encryption types:
//!
//! * RND = block cipher in CBC mode with a random IV;
//! * DET for multi-block values = AES in a CMC-mode variant ("one round of
//!   CBC, followed by another round of CBC with the blocks in the reverse
//!   order") with a zero IV, to avoid leaking prefix equality;
//! * CTR is used internally for streams (SEARCH, key wrapping, the DRBG).

/// A block cipher with a fixed block size, operating on byte slices.
pub trait BlockCipher {
    /// Block size in bytes.
    const BLOCK_SIZE: usize;

    /// Encrypts one block in place. `block.len()` must equal `BLOCK_SIZE`.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypts one block in place. `block.len()` must equal `BLOCK_SIZE`.
    fn decrypt_block(&self, block: &mut [u8]);
}

/// PKCS#7-pads `data` to a multiple of `block` bytes (always adds padding).
pub fn pkcs7_pad(data: &[u8], block: usize) -> Vec<u8> {
    let pad = block - data.len() % block;
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Removes PKCS#7 padding; `None` if the padding is malformed.
pub fn pkcs7_unpad(data: &[u8], block: usize) -> Option<Vec<u8>> {
    if data.is_empty() || !data.len().is_multiple_of(block) {
        return None;
    }
    let pad = *data.last().unwrap() as usize;
    if pad == 0 || pad > block || pad > data.len() {
        return None;
    }
    if data[data.len() - pad..].iter().any(|&b| b != pad as u8) {
        return None;
    }
    Some(data[..data.len() - pad].to_vec())
}

/// CBC-encrypts `data` (PKCS#7 padded) under `iv`.
///
/// # Panics
///
/// Panics if `iv.len() != C::BLOCK_SIZE`.
pub fn cbc_encrypt<C: BlockCipher>(cipher: &C, iv: &[u8], data: &[u8]) -> Vec<u8> {
    assert_eq!(iv.len(), C::BLOCK_SIZE, "IV must be one block");
    let mut out = pkcs7_pad(data, C::BLOCK_SIZE);
    let mut prev = iv.to_vec();
    for block in out.chunks_exact_mut(C::BLOCK_SIZE) {
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        cipher.encrypt_block(block);
        prev.copy_from_slice(block);
    }
    out
}

/// CBC-decrypts and unpads; `None` on malformed length or padding.
pub fn cbc_decrypt<C: BlockCipher>(cipher: &C, iv: &[u8], data: &[u8]) -> Option<Vec<u8>> {
    assert_eq!(iv.len(), C::BLOCK_SIZE, "IV must be one block");
    if data.is_empty() || !data.len().is_multiple_of(C::BLOCK_SIZE) {
        return None;
    }
    let mut out = data.to_vec();
    let mut prev = iv.to_vec();
    for block in out.chunks_exact_mut(C::BLOCK_SIZE) {
        let saved = block.to_vec();
        cipher.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
    pkcs7_unpad(&out, C::BLOCK_SIZE)
}

/// Raw CBC pass without padding over whole blocks (helper for CMC).
fn cbc_pass_raw<C: BlockCipher>(cipher: &C, blocks: &mut [u8]) {
    let mut prev = vec![0u8; C::BLOCK_SIZE];
    for block in blocks.chunks_exact_mut(C::BLOCK_SIZE) {
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        cipher.encrypt_block(block);
        prev.copy_from_slice(block);
    }
}

fn cbc_pass_raw_inv<C: BlockCipher>(cipher: &C, blocks: &mut [u8]) {
    let mut prev = vec![0u8; C::BLOCK_SIZE];
    for block in blocks.chunks_exact_mut(C::BLOCK_SIZE) {
        let saved = block.to_vec();
        cipher.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        prev = saved;
    }
}

fn reverse_blocks(data: &mut [u8], block: usize) {
    let n = data.len() / block;
    for i in 0..n / 2 {
        for k in 0..block {
            data.swap(i * block + k, (n - 1 - i) * block + k);
        }
    }
}

/// Encrypts with the paper's CMC variant: zero-IV CBC, reverse the block
/// order, zero-IV CBC again. Deterministic; every output block depends on
/// every input block, so no prefix equality leaks (§3.1, DET).
pub fn cmc_encrypt<C: BlockCipher>(cipher: &C, data: &[u8]) -> Vec<u8> {
    let mut out = pkcs7_pad(data, C::BLOCK_SIZE);
    cbc_pass_raw(cipher, &mut out);
    reverse_blocks(&mut out, C::BLOCK_SIZE);
    cbc_pass_raw(cipher, &mut out);
    out
}

/// Decrypts [`cmc_encrypt`] output; `None` on malformed input.
pub fn cmc_decrypt<C: BlockCipher>(cipher: &C, data: &[u8]) -> Option<Vec<u8>> {
    if data.is_empty() || !data.len().is_multiple_of(C::BLOCK_SIZE) {
        return None;
    }
    let mut out = data.to_vec();
    cbc_pass_raw_inv(cipher, &mut out);
    reverse_blocks(&mut out, C::BLOCK_SIZE);
    cbc_pass_raw_inv(cipher, &mut out);
    pkcs7_unpad(&out, C::BLOCK_SIZE)
}

/// CTR-mode keystream XOR: encrypts or decrypts `data` in place under the
/// `nonce` (one block, its trailing 4 bytes used as a big-endian counter).
///
/// # Panics
///
/// Panics if `nonce.len() != C::BLOCK_SIZE`.
pub fn ctr_xor<C: BlockCipher>(cipher: &C, nonce: &[u8], data: &mut [u8]) {
    assert_eq!(nonce.len(), C::BLOCK_SIZE, "nonce must be one block");
    let bs = C::BLOCK_SIZE;
    let mut counter: u32 = 0;
    for chunk in data.chunks_mut(bs) {
        let mut keystream = nonce.to_vec();
        let clen = keystream.len();
        let ctr_bytes = counter.to_be_bytes();
        for k in 0..4 {
            keystream[clen - 4 + k] ^= ctr_bytes[k];
        }
        cipher.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes;

    fn aes() -> Aes {
        Aes::new_128(b"0123456789abcdef")
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let c = aes();
        let iv = [7u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100, 256] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cbc_encrypt(&c, &iv, &data);
            assert_eq!(cbc_decrypt(&c, &iv, &ct).unwrap(), data);
        }
    }

    #[test]
    fn cbc_is_randomized_by_iv() {
        let c = aes();
        let ct1 = cbc_encrypt(&c, &[1u8; 16], b"same plaintext!!");
        let ct2 = cbc_encrypt(&c, &[2u8; 16], b"same plaintext!!");
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn cbc_rejects_bad_padding() {
        let c = aes();
        let mut ct = cbc_encrypt(&c, &[0u8; 16], b"hello world");
        let last = ct.len() - 1;
        ct[last] ^= 0xff;
        assert!(cbc_decrypt(&c, &[0u8; 16], &ct).is_none());
    }

    #[test]
    fn cmc_roundtrip_and_determinism() {
        let c = aes();
        for len in [0usize, 1, 16, 33, 64, 129] {
            let data: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let ct1 = cmc_encrypt(&c, &data);
            let ct2 = cmc_encrypt(&c, &data);
            assert_eq!(ct1, ct2, "DET must be deterministic");
            assert_eq!(cmc_decrypt(&c, &ct1).unwrap(), data);
        }
    }

    #[test]
    fn cmc_hides_shared_prefix() {
        // Two 3-block plaintexts sharing the first 2 blocks must not share
        // any ciphertext block (the flaw of plain CBC that CMC fixes).
        let c = aes();
        let mut a = vec![0x41u8; 48];
        let mut b = vec![0x41u8; 48];
        b[47] = 0x42;
        let ca = cmc_encrypt(&c, &a);
        let cb = cmc_encrypt(&c, &b);
        for (blk_a, blk_b) in ca.chunks(16).zip(cb.chunks(16)) {
            assert_ne!(
                blk_a, blk_b,
                "CMC must diffuse a trailing change everywhere"
            );
        }
        a[0] = 0x43;
        let _ = a;
    }

    #[test]
    fn ctr_roundtrip() {
        let c = aes();
        let nonce = [9u8; 16];
        let mut data = b"counter mode works on any length".to_vec();
        let orig = data.clone();
        ctr_xor(&c, &nonce, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&c, &nonce, &mut data);
        assert_eq!(data, orig);
    }
}
