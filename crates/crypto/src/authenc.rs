//! Authenticated encryption (encrypt-then-MAC) for key wrapping.
//!
//! The multi-principal key chains (§4.2) store principal keys encrypted
//! under other principals' keys in the `access_keys` table. Those wrapped
//! keys must be non-malleable, so we use AES-128-CTR with a random nonce
//! followed by HMAC-SHA256 over nonce‖ciphertext, with independent subkeys
//! derived from the wrapping key.

use crate::aes::Aes;
use crate::modes::ctr_xor;
use crate::prf::{derive_key, Key};

const NONCE_LEN: usize = 16;
const TAG_LEN: usize = 32;

fn subkeys(key: &Key) -> (Aes, Key) {
    let enc = derive_key(key, &["authenc", "enc"]);
    let mac = derive_key(key, &["authenc", "mac"]);
    let mut aes_key = [0u8; 16];
    aes_key.copy_from_slice(&enc[..16]);
    (Aes::new_128(&aes_key), mac)
}

/// Seals `plaintext` under `key`: returns `nonce ‖ ciphertext ‖ tag`.
pub fn seal<R: rand::RngCore + ?Sized>(key: &Key, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
    let (aes, mac_key) = subkeys(key);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let mut ct = plaintext.to_vec();
    ctr_xor(&aes, &nonce, &mut ct);
    let mut out = nonce.to_vec();
    out.extend_from_slice(&ct);
    let tag = crate::sha256::hmac_sha256(&mac_key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Opens a sealed box; `None` if the tag does not verify or input is short.
pub fn open(key: &Key, sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < NONCE_LEN + TAG_LEN {
        return None;
    }
    let (aes, mac_key) = subkeys(key);
    let body = &sealed[..sealed.len() - TAG_LEN];
    let tag = &sealed[sealed.len() - TAG_LEN..];
    let expect = crate::sha256::hmac_sha256(&mac_key, body);
    // Constant-time-ish comparison (accumulate the difference).
    let diff = tag
        .iter()
        .zip(expect.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b));
    if diff != 0 {
        return None;
    }
    let nonce = &body[..NONCE_LEN];
    let mut pt = body[NONCE_LEN..].to_vec();
    ctr_xor(&aes, nonce, &mut pt);
    Some(pt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = [9u8; 32];
        for len in [0usize, 1, 31, 32, 33, 100] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = seal(&key, &pt, &mut rng);
            assert_eq!(open(&key, &sealed).unwrap(), pt);
        }
    }

    #[test]
    fn tamper_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = [9u8; 32];
        let sealed = seal(&key, b"principal key bytes", &mut rng);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(open(&key, &bad).is_none(), "flip at {i} must fail");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = StdRng::seed_from_u64(3);
        let sealed = seal(&[1u8; 32], b"secret", &mut rng);
        assert!(open(&[2u8; 32], &sealed).is_none());
    }

    #[test]
    fn nonce_randomizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = [5u8; 32];
        assert_ne!(seal(&key, b"same", &mut rng), seal(&key, b"same", &mut rng));
    }
}
