//! Deterministic random bit generator (AES-128-CTR).
//!
//! OPE (Boldyreva et al.) requires *deterministic* coins derived from the
//! key and the plaintext's search path so equal plaintexts always encrypt
//! equally; this DRBG supplies them. It also seeds reproducible experiment
//! workloads.

use crate::aes::Aes;
use crate::modes::BlockCipher;

/// An AES-CTR based DRBG implementing [`rand::RngCore`].
///
/// # Examples
///
/// ```
/// use cryptdb_crypto::Drbg;
/// use rand::RngCore;
///
/// let mut a = Drbg::from_seed(&[1u8; 32]);
/// let mut b = Drbg::from_seed(&[1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct Drbg {
    aes: Aes,
    counter: u128,
    buf: [u8; 16],
    buf_pos: usize,
}

impl Drbg {
    /// Creates a DRBG from a 32-byte seed (16 bytes key, 16 bytes IV).
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let mut key = [0u8; 16];
        key.copy_from_slice(&seed[..16]);
        let iv = u128::from_be_bytes(seed[16..32].try_into().unwrap());
        Drbg {
            aes: Aes::new_128(&key),
            counter: iv,
            buf: [0u8; 16],
            buf_pos: 16,
        }
    }

    fn refill(&mut self) {
        self.buf = self.counter.to_be_bytes();
        self.aes.encrypt_block(&mut self.buf);
        self.counter = self.counter.wrapping_add(1);
        self.buf_pos = 0;
    }
}

impl rand::RngCore for Drbg {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.buf_pos == 16 {
                self.refill();
            }
            let take = (dest.len() - filled).min(16 - self.buf_pos);
            dest[filled..filled + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            filled += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_across_chunkings() {
        let mut a = Drbg::from_seed(&[7u8; 32]);
        let mut b = Drbg::from_seed(&[7u8; 32]);
        let mut buf_a = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        let mut buf_b = [0u8; 100];
        for chunk in buf_b.chunks_mut(9) {
            b.fill_bytes(chunk);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Drbg::from_seed(&[1u8; 32]);
        let mut b = Drbg::from_seed(&[2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_balanced() {
        // Cheap sanity check: bit balance within 5% over 64 KiB.
        let mut rng = Drbg::from_seed(&[3u8; 32]);
        let mut buf = vec![0u8; 65536];
        rng.fill_bytes(&mut buf);
        let ones: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        let total = buf.len() as u64 * 8;
        let ratio = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&ratio), "bit ratio {ratio}");
    }
}
