//! PRF and key-derivation layer.
//!
//! Implements the paper's Equation (1): every onion-layer key is derived
//! from the master key as `K_{t,c,o,l} = PRF_MK(table ‖ column ‖ onion ‖
//! layer)`. The paper instantiates the PRF with an AES-based PRP; we use
//! HMAC-SHA256, which is also a PRF under standard assumptions and
//! yields 256-bit subkeys directly.

use crate::sha256::hmac_sha256;

/// A 256-bit symmetric key.
pub type Key = [u8; 32];

/// Derives a subkey from `master` and a domain-separated label path.
///
/// Each path component is length-prefixed so distinct paths can never
/// collide byte-wise (e.g. `["t1", "c2"]` vs `["t", "1c2"]`).
///
/// # Examples
///
/// ```
/// use cryptdb_crypto::prf::derive_key;
///
/// let mk = [7u8; 32];
/// let k1 = derive_key(&mk, &["table1", "c2", "Eq", "RND"]);
/// let k2 = derive_key(&mk, &["table1", "c2", "Eq", "DET"]);
/// assert_ne!(k1, k2);
/// ```
pub fn derive_key(master: &Key, path: &[&str]) -> Key {
    let mut data = Vec::new();
    for part in path {
        data.extend_from_slice(&(part.len() as u32).to_be_bytes());
        data.extend_from_slice(part.as_bytes());
    }
    hmac_sha256(master, &data)
}

/// PRF with arbitrary byte input (used by JOIN-ADJ's `PRF_K0(v)`).
pub fn prf(key: &Key, data: &[u8]) -> [u8; 32] {
    hmac_sha256(key, data)
}

/// Derives a key from a user password and salt by iterated HMAC
/// (PBKDF2-HMAC-SHA256 with a single output block).
///
/// Used for the `external_keys` table: an external principal's random key
/// is wrapped under this password-derived key (§4.2).
pub fn password_kdf(password: &str, salt: &[u8], iterations: u32) -> Key {
    let mut msg = salt.to_vec();
    msg.extend_from_slice(&1u32.to_be_bytes());
    let mut u = hmac_sha256(password.as_bytes(), &msg);
    let mut out = u;
    for _ in 1..iterations {
        u = hmac_sha256(password.as_bytes(), &u);
        for (o, b) in out.iter_mut().zip(u.iter()) {
            *o ^= b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_separated() {
        let mk = [1u8; 32];
        assert_eq!(derive_key(&mk, &["a", "b"]), derive_key(&mk, &["a", "b"]));
        assert_ne!(derive_key(&mk, &["a", "b"]), derive_key(&mk, &["ab"]));
        assert_ne!(
            derive_key(&mk, &["a", "b"]),
            derive_key(&[2u8; 32], &["a", "b"])
        );
    }

    #[test]
    fn path_length_prefix_prevents_collisions() {
        let mk = [3u8; 32];
        assert_ne!(
            derive_key(&mk, &["t1", "c2"]),
            derive_key(&mk, &["t", "1c2"])
        );
        assert_ne!(derive_key(&mk, &["", "x"]), derive_key(&mk, &["x", ""]));
    }

    #[test]
    fn password_kdf_depends_on_everything() {
        let a = password_kdf("hunter2", b"salt", 100);
        assert_ne!(a, password_kdf("hunter3", b"salt", 100));
        assert_ne!(a, password_kdf("hunter2", b"pepper", 100));
        assert_ne!(a, password_kdf("hunter2", b"salt", 101));
        assert_eq!(a, password_kdf("hunter2", b"salt", 100));
    }
}
