//! Blowfish block cipher (64-bit blocks).
//!
//! The paper uses Blowfish for RND and DET over 64-bit integers because the
//! 64-bit block size avoids doubling ciphertext length under AES (§3.1).
//!
//! The P-array and S-boxes are defined as the leading hexadecimal digits of
//! the fractional part of π. Rather than embedding 1042 magic constants, we
//! *compute* π to 33,000+ fractional bits with Machin's formula
//! (π = 16·arctan(1/5) − 4·arctan(1/239)) in fixed point on
//! `cryptdb-bignum`, then self-check the first word against the well-known
//! prefix `0x243f6a88` and the whole cipher against Eric Young's reference
//! test vectors.

use crate::modes::BlockCipher;
use cryptdb_bignum::Ubig;
use std::sync::OnceLock;

const ROUNDS: usize = 16;
/// 18 P-words + 4 × 256 S-box words.
const PI_WORDS: usize = 18 + 4 * 256;
/// Fixed-point fractional bits for the π computation (with guard bits).
const PI_FRAC_BITS: usize = PI_WORDS * 32 + 64;

/// arctan(1/x) in fixed point with `PI_FRAC_BITS` fractional bits.
///
/// Gregory series: arctan(1/x) = Σ (−1)^k / ((2k+1) x^(2k+1)).
fn arctan_inv(x: u64) -> Ubig {
    let mut result = Ubig::zero();
    let mut power = Ubig::one().shl(PI_FRAC_BITS).div_rem_u64(x).0; // 1/x.
    let x2 = x * x;
    let mut k: u64 = 0;
    let mut negative = false;
    while !power.is_zero() {
        let term = power.div_rem_u64(2 * k + 1).0;
        if negative {
            result = result.sub(&term);
        } else {
            result = result.add(&term);
        }
        power = power.div_rem_u64(x2).0;
        negative = !negative;
        k += 1;
    }
    result
}

/// The first [`PI_WORDS`] 32-bit words of the fractional part of π.
fn pi_words() -> &'static Vec<u32> {
    static WORDS: OnceLock<Vec<u32>> = OnceLock::new();
    WORDS.get_or_init(|| {
        // π = 16·arctan(1/5) − 4·arctan(1/239).
        let pi = arctan_inv(5).mul_u64(16).sub(&arctan_inv(239).mul_u64(4));
        // Strip the integer part (3): keep only the fraction.
        let frac = pi.rem(&Ubig::one().shl(PI_FRAC_BITS));
        let words: Vec<u32> = (0..PI_WORDS)
            .map(|i| {
                frac.shr(PI_FRAC_BITS - 32 * (i + 1))
                    .rem(&Ubig::one().shl(32))
                    .to_u64()
                    .unwrap() as u32
            })
            .collect();
        assert_eq!(words[0], 0x243f_6a88, "π digit self-check failed");
        assert_eq!(words[1], 0x85a3_08d3, "π digit self-check failed");
        words
    })
}

/// A Blowfish key schedule.
///
/// # Examples
///
/// ```
/// use cryptdb_crypto::{Blowfish, BlockCipher};
///
/// let bf = Blowfish::new(b"key material");
/// let mut block = 42u64.to_be_bytes();
/// bf.encrypt_block(&mut block);
/// bf.decrypt_block(&mut block);
/// assert_eq!(u64::from_be_bytes(block), 42);
/// ```
pub struct Blowfish {
    p: [u32; 18],
    s: [[u32; 256]; 4],
}

impl Blowfish {
    /// Expands `key` (1–56 bytes; longer keys are truncated per the spec).
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty.
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty(), "Blowfish key must be non-empty");
        let key = &key[..key.len().min(56)];
        let words = pi_words();
        let mut p = [0u32; 18];
        let mut s = [[0u32; 256]; 4];
        p.copy_from_slice(&words[..18]);
        for (i, sbox) in s.iter_mut().enumerate() {
            sbox.copy_from_slice(&words[18 + 256 * i..18 + 256 * (i + 1)]);
        }
        // XOR the key (cyclically) into P.
        let mut kpos = 0usize;
        for pw in p.iter_mut() {
            let mut kw = 0u32;
            for _ in 0..4 {
                kw = (kw << 8) | key[kpos] as u32;
                kpos = (kpos + 1) % key.len();
            }
            *pw ^= kw;
        }
        // Replace P and S with successive encryptions of the zero block.
        let mut bf = Blowfish { p, s };
        let mut l = 0u32;
        let mut r = 0u32;
        for i in (0..18).step_by(2) {
            (l, r) = bf.encrypt_words(l, r);
            bf.p[i] = l;
            bf.p[i + 1] = r;
        }
        for sbox in 0..4 {
            for i in (0..256).step_by(2) {
                (l, r) = bf.encrypt_words(l, r);
                bf.s[sbox][i] = l;
                bf.s[sbox][i + 1] = r;
            }
        }
        bf
    }

    fn feistel(&self, x: u32) -> u32 {
        let a = (x >> 24) as usize;
        let b = (x >> 16 & 0xff) as usize;
        let c = (x >> 8 & 0xff) as usize;
        let d = (x & 0xff) as usize;
        (self.s[0][a].wrapping_add(self.s[1][b]) ^ self.s[2][c]).wrapping_add(self.s[3][d])
    }

    fn encrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            l ^= self.p[i];
            r ^= self.feistel(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[16];
        l ^= self.p[17];
        (l, r)
    }

    fn decrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in (2..18).rev() {
            l ^= self.p[i];
            r ^= self.feistel(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[1];
        l ^= self.p[0];
        (l, r)
    }

    /// Encrypts a `u64` (big-endian word pair) — the paper's integer DET.
    pub fn encrypt_u64(&self, v: u64) -> u64 {
        let (l, r) = self.encrypt_words((v >> 32) as u32, v as u32);
        (l as u64) << 32 | r as u64
    }

    /// Decrypts a `u64`.
    pub fn decrypt_u64(&self, v: u64) -> u64 {
        let (l, r) = self.decrypt_words((v >> 32) as u32, v as u32);
        (l as u64) << 32 | r as u64
    }
}

impl BlockCipher for Blowfish {
    const BLOCK_SIZE: usize = 8;

    fn encrypt_block(&self, block: &mut [u8]) {
        let v = u64::from_be_bytes(block.try_into().expect("Blowfish block must be 8 bytes"));
        block.copy_from_slice(&self.encrypt_u64(v).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let v = u64::from_be_bytes(block.try_into().expect("Blowfish block must be 8 bytes"));
        block.copy_from_slice(&self.decrypt_u64(v).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eric_young_reference_vectors() {
        // From the canonical Blowfish test vector set (key, plaintext,
        // ciphertext), all values big-endian 64-bit.
        let cases: &[(u64, u64, u64)] = &[
            (0x0000000000000000, 0x0000000000000000, 0x4ef997456198dd78),
            (0xffffffffffffffff, 0xffffffffffffffff, 0x51866fd5b85ecb8a),
            (0x3000000000000000, 0x1000000000000001, 0x7d856f9a613063f2),
            (0x1111111111111111, 0x1111111111111111, 0x2466dd878b963c9d),
        ];
        for &(key, pt, ct) in cases {
            let bf = Blowfish::new(&key.to_be_bytes());
            assert_eq!(bf.encrypt_u64(pt), ct, "key={key:016x}");
            assert_eq!(bf.decrypt_u64(ct), pt);
        }
    }

    #[test]
    fn deterministic_and_key_separated() {
        let a = Blowfish::new(b"key-a");
        let a2 = Blowfish::new(b"key-a");
        let b = Blowfish::new(b"key-b");
        assert_eq!(a.encrypt_u64(12345), a2.encrypt_u64(12345));
        assert_ne!(a.encrypt_u64(12345), b.encrypt_u64(12345));
    }

    #[test]
    fn roundtrip_sweep() {
        let bf = Blowfish::new(b"roundtrip");
        for v in [0u64, 1, u64::MAX, 0xdeadbeef, 1 << 63] {
            assert_eq!(bf.decrypt_u64(bf.encrypt_u64(v)), v);
        }
    }
}
