//! Property tests: Paillier's homomorphic laws.

use cryptdb_bignum::Ubig;
use cryptdb_paillier::PaillierPrivate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared key: keygen is the slow part, the laws don't depend on it.
fn key() -> &'static PaillierPrivate {
    static KEY: OnceLock<PaillierPrivate> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(99);
        PaillierPrivate::keygen(&mut rng, 256)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip(v in -1_000_000_000i64..1_000_000_000) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(v as u64 ^ 7);
        prop_assert_eq!(sk.decrypt_i64(&sk.encrypt_i64(v, &mut rng)), Some(v));
    }

    #[test]
    fn additive_homomorphism(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64((a ^ b) as u64);
        let ca = sk.encrypt_i64(a, &mut rng);
        let cb = sk.encrypt_i64(b, &mut rng);
        let sum = sk.public().add(&ca, &cb);
        prop_assert_eq!(sk.decrypt_i64(&sum), Some(a + b));
    }

    #[test]
    fn plaintext_multiplication(a in -10_000i64..10_000, k in 0u64..1000) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(a as u64 ^ k);
        let c = sk.encrypt_i64(a, &mut rng);
        let ck = sk.public().mul_plain(&c, &Ubig::from_u64(k));
        prop_assert_eq!(sk.decrypt_i64(&ck), Some(a * k as i64));
    }

    #[test]
    fn sum_of_many(vs in proptest::collection::vec(-10_000i64..10_000, 0..20)) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(vs.len() as u64);
        let mut acc = sk.public().zero();
        for &v in &vs {
            acc = sk.public().add(&acc, &sk.encrypt_i64(v, &mut rng));
        }
        prop_assert_eq!(sk.decrypt_i64(&acc), Some(vs.iter().sum::<i64>()));
    }

    #[test]
    fn bytes_roundtrip(v in any::<i32>()) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(v as u64);
        let c = sk.encrypt_i64(v as i64, &mut rng);
        let bytes = sk.public().ciphertext_to_bytes(&c);
        let back = sk.public().ciphertext_from_bytes(&bytes);
        prop_assert_eq!(sk.decrypt_i64(&back), Some(v as i64));
    }

    // ---- CRT fast paths against the full-width reference paths ----

    #[test]
    fn crt_decrypt_matches_noncrt(v in -1_000_000_000i64..1_000_000_000, seed in any::<u64>()) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = sk.encrypt_i64(v, &mut rng);
        prop_assert_eq!(sk.decrypt(&c), sk.decrypt_noncrt(&c));
    }

    #[test]
    fn crt_decrypt_matches_noncrt_on_sums(vs in proptest::collection::vec(-10_000i64..10_000, 1..12),
                                          seed in any::<u64>()) {
        // Aggregated ciphertexts (the SUM UDF output) decrypt identically
        // on both paths — this is what the proxy batch-decrypts.
        let sk = key();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = sk.public().zero();
        for &v in &vs {
            acc = sk.public().add(&acc, &sk.encrypt_i64(v, &mut rng));
        }
        prop_assert_eq!(sk.decrypt(&acc), sk.decrypt_noncrt(&acc));
        prop_assert_eq!(sk.decrypt_i64(&acc), Some(vs.iter().sum::<i64>()));
    }

    #[test]
    fn crt_blinding_matches_noncrt(seed in any::<u64>()) {
        // Identical r must give bit-identical r^n mod n² on both paths.
        let sk = key();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = loop {
            let r = Ubig::rand_below(&mut rng, sk.public().modulus());
            if !r.is_zero() && r.gcd(sk.public().modulus()).is_one() {
                break r;
            }
        };
        prop_assert_eq!(sk.blinding_from_r(&r), sk.blinding_from_r_noncrt(&r));
    }

    #[test]
    fn batch_decrypt_matches_single(vs in proptest::collection::vec(-1_000_000i64..1_000_000, 0..10),
                                    seed in any::<u64>()) {
        let sk = key();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = vs.iter().map(|&v| sk.encrypt_i64(v, &mut rng)).collect();
        let batch = sk.decrypt_i64_batch(&cts);
        prop_assert_eq!(batch.len(), cts.len());
        for (i, c) in cts.iter().enumerate() {
            prop_assert_eq!(batch[i], sk.decrypt_i64(c));
            prop_assert_eq!(batch[i], Some(vs[i]));
        }
    }
}
