//! Paillier additively homomorphic encryption (the paper's HOM scheme).
//!
//! §3.1: "To support summation, we implemented the Paillier cryptosystem.
//! With Paillier, multiplying the encryptions of two values results in an
//! encryption of the sum of the values." The DBMS server computes `SUM`
//! aggregates by multiplying ciphertexts modulo `n²` inside a UDF; the
//! proxy decrypts the product.
//!
//! Implementation notes:
//!
//! * `g = n + 1`, so `g^m = 1 + m·n (mod n²)` — encryption costs one
//!   `r^n mod n²` exponentiation plus a multiplication.
//! * The paper's §3.5.2 ciphertext pre-computation is supported: the
//!   expensive `r^n mod n²` factors can be produced ahead of time with
//!   [`PaillierPrivate::precompute_blinding`] and spent in
//!   [`PaillierPublic::encrypt_with_blinding`], removing HOM encryption
//!   from the critical path.
//! * Signed 64-bit values are encoded as residues: `v < 0` maps to
//!   `n + v`; decode folds values above `n/2` back to negatives.

#![forbid(unsafe_code)]

use cryptdb_bignum::{gen_prime, Montgomery, Ubig};

/// Public Paillier parameters: the modulus and derived constants.
///
/// Cloneable so the DBMS server side (UDFs) can hold the public half —
/// the server multiplies ciphertexts but can never decrypt them.
#[derive(Clone)]
pub struct PaillierPublic {
    n: Ubig,
    n_squared: Ubig,
    half_n: Ubig,
}

/// Private Paillier key (proxy side only).
pub struct PaillierPrivate {
    public: PaillierPublic,
    /// λ = lcm(p−1, q−1).
    lambda: Ubig,
    /// μ = L(g^λ mod n²)⁻¹ mod n.
    mu: Ubig,
    mont_n2: Montgomery,
}

/// A Paillier ciphertext (an element of Z*_{n²}).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(pub Ubig);

impl PaillierPublic {
    /// The modulus `n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Ciphertext length in bytes (⌈|n²|/8⌉) — the paper notes HOM
    /// ciphertexts are 2048 bits for a 1024-bit modulus (§3.1).
    pub fn ciphertext_len(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Encodes a signed 64-bit integer into Z_n.
    pub fn encode_i64(&self, v: i64) -> Ubig {
        if v >= 0 {
            Ubig::from_u64(v as u64)
        } else {
            self.n.sub(&Ubig::from_u64(v.unsigned_abs()))
        }
    }

    /// Decodes a Z_n residue back to a signed 64-bit integer.
    ///
    /// Returns `None` if the magnitude exceeds `i64` range.
    pub fn decode_i64(&self, m: &Ubig) -> Option<i64> {
        if m > &self.half_n {
            let neg = self.n.sub(m);
            let v = neg.to_u64()?;
            if v > i64::MAX as u64 + 1 {
                return None;
            }
            Some((v as i128).wrapping_neg() as i64)
        } else {
            let v = m.to_u64()?;
            i64::try_from(v).ok()
        }
    }

    /// Encrypts `m ∈ Z_n` with a pre-computed blinding factor `r^n mod n²`.
    ///
    /// This is the §3.5.2 fast path: `c = (1 + m·n) · rⁿ mod n²`.
    pub fn encrypt_with_blinding(&self, m: &Ubig, blinding: &Ubig) -> Ciphertext {
        let gm = Ubig::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        Ciphertext(gm.mod_mul(blinding, &self.n_squared))
    }

    /// Homomorphic addition: multiply ciphertexts mod n².
    ///
    /// This is exactly the server-side `HOM_ADD` UDF operation.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(a.0.mod_mul(&b.0, &self.n_squared))
    }

    /// The additive identity: an encryption of zero with trivial blinding.
    ///
    /// Used as the accumulator seed of the `HOM_SUM` aggregate UDF. It is
    /// not semantically secure by itself but is immediately multiplied by
    /// real ciphertexts.
    pub fn zero(&self) -> Ciphertext {
        Ciphertext(Ubig::one())
    }

    /// Homomorphic plaintext multiplication: `c^k mod n²` encrypts `m·k`.
    pub fn mul_plain(&self, c: &Ciphertext, k: &Ubig) -> Ciphertext {
        Ciphertext(c.0.mod_exp(k, &self.n_squared))
    }

    /// Serialises a ciphertext to fixed-width big-endian bytes.
    pub fn ciphertext_to_bytes(&self, c: &Ciphertext) -> Vec<u8> {
        c.0.to_bytes_be(self.ciphertext_len())
    }

    /// Parses a ciphertext from bytes (as produced by
    /// [`Self::ciphertext_to_bytes`]).
    pub fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Ciphertext {
        Ciphertext(Ubig::from_bytes_be(bytes))
    }
}

impl PaillierPrivate {
    /// Generates a key with an `n` of `bits` bits (so ciphertexts have
    /// `2·bits`). The paper uses 1024-bit `n` / 2048-bit ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn keygen<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 16, "modulus too small");
        let (p, q, n) = loop {
            let p = gen_prime(rng, bits / 2);
            let q = gen_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() == bits {
                break (p, q, n);
            }
        };
        let n_squared = n.mul(&n);
        let one = Ubig::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        let mont_n2 = Montgomery::new(n_squared.clone());
        // μ = L(g^λ mod n²)⁻¹ mod n, with g = n + 1.
        let g = n.add(&one);
        let glambda = mont_n2.pow(&g, &lambda);
        let l = glambda.sub(&one).div_rem(&n).0;
        let mu = l.mod_inv(&n).expect("λ invertible for valid p, q");
        let half_n = n.shr(1);
        PaillierPrivate {
            public: PaillierPublic {
                n,
                n_squared,
                half_n,
            },
            lambda,
            mu,
            mont_n2,
        }
    }

    /// The public half of the key.
    pub fn public(&self) -> &PaillierPublic {
        &self.public
    }

    /// Pre-computes one blinding factor `rⁿ mod n²` (§3.5.2).
    pub fn precompute_blinding<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> Ubig {
        let r = loop {
            let r = Ubig::rand_below(rng, &self.public.n);
            if !r.is_zero() && r.gcd(&self.public.n).is_one() {
                break r;
            }
        };
        self.mont_n2.pow(&r, &self.public.n)
    }

    /// Encrypts `m ∈ Z_n`, drawing fresh randomness.
    pub fn encrypt<R: rand::RngCore + ?Sized>(&self, m: &Ubig, rng: &mut R) -> Ciphertext {
        let blinding = self.precompute_blinding(rng);
        self.public.encrypt_with_blinding(m, &blinding)
    }

    /// Encrypts a signed 64-bit integer.
    pub fn encrypt_i64<R: rand::RngCore + ?Sized>(&self, v: i64, rng: &mut R) -> Ciphertext {
        self.encrypt(&self.public.encode_i64(v), rng)
    }

    /// Decrypts to a residue in Z_n: `m = L(c^λ mod n²)·μ mod n`.
    pub fn decrypt(&self, c: &Ciphertext) -> Ubig {
        let clambda = self.mont_n2.pow(&c.0, &self.lambda);
        let l = clambda.sub(&Ubig::one()).div_rem(&self.public.n).0;
        l.mod_mul(&self.mu, &self.public.n)
    }

    /// Decrypts to a signed 64-bit integer.
    ///
    /// Returns `None` on magnitude overflow (e.g. a sum that left i64).
    pub fn decrypt_i64(&self, c: &Ciphertext) -> Option<i64> {
        self.public.decode_i64(&self.decrypt(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> (PaillierPrivate, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        (PaillierPrivate::keygen(&mut rng, 256), rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (sk, mut rng) = key();
        for v in [0i64, 1, -1, 42, -42, i64::MAX / 2, i64::MIN / 2] {
            let c = sk.encrypt_i64(v, &mut rng);
            assert_eq!(sk.decrypt_i64(&c), Some(v), "v={v}");
        }
    }

    #[test]
    fn homomorphic_addition() {
        let (sk, mut rng) = key();
        let a = sk.encrypt_i64(1234, &mut rng);
        let b = sk.encrypt_i64(-234, &mut rng);
        let sum = sk.public().add(&a, &b);
        assert_eq!(sk.decrypt_i64(&sum), Some(1000));
    }

    #[test]
    fn sum_aggregate_like_udf() {
        let (sk, mut rng) = key();
        let values = [10i64, 20, 30, -5, 45];
        let mut acc = sk.public().zero();
        for &v in &values {
            let c = sk.encrypt_i64(v, &mut rng);
            acc = sk.public().add(&acc, &c);
        }
        assert_eq!(sk.decrypt_i64(&acc), Some(100));
    }

    #[test]
    fn plaintext_multiplication() {
        let (sk, mut rng) = key();
        let c = sk.encrypt_i64(7, &mut rng);
        let c3 = sk.public().mul_plain(&c, &Ubig::from_u64(3));
        assert_eq!(sk.decrypt_i64(&c3), Some(21));
    }

    #[test]
    fn probabilistic_encryption() {
        let (sk, mut rng) = key();
        let a = sk.encrypt_i64(5, &mut rng);
        let b = sk.encrypt_i64(5, &mut rng);
        assert_ne!(a, b, "HOM must be IND-CPA probabilistic");
        assert_eq!(sk.decrypt_i64(&a), sk.decrypt_i64(&b));
    }

    #[test]
    fn precomputed_blinding_matches_fresh() {
        let (sk, mut rng) = key();
        let blinding = sk.precompute_blinding(&mut rng);
        let c = sk
            .public()
            .encrypt_with_blinding(&sk.public().encode_i64(99), &blinding);
        assert_eq!(sk.decrypt_i64(&c), Some(99));
    }

    #[test]
    fn ciphertext_bytes_roundtrip() {
        let (sk, mut rng) = key();
        let c = sk.encrypt_i64(31337, &mut rng);
        let bytes = sk.public().ciphertext_to_bytes(&c);
        assert_eq!(bytes.len(), sk.public().ciphertext_len());
        let back = sk.public().ciphertext_from_bytes(&bytes);
        assert_eq!(sk.decrypt_i64(&back), Some(31337));
    }
}
