//! Paillier additively homomorphic encryption (the paper's HOM scheme).
//!
//! §3.1: "To support summation, we implemented the Paillier cryptosystem.
//! With Paillier, multiplying the encryptions of two values results in an
//! encryption of the sum of the values." The DBMS server computes `SUM`
//! aggregates by multiplying ciphertexts modulo `n²` inside a UDF; the
//! proxy decrypts the product.
//!
//! # Implemented optimisations, mapped to the paper
//!
//! * **`g = n + 1` (§3.1 implementation choice).** `g^m = 1 + m·n (mod n²)`,
//!   so encryption is one multiplication plus the `r^n mod n²` blinding —
//!   never a `g^m` exponentiation.
//! * **Ciphertext pre-computing (§3.5.2).** The expensive `r^n mod n²`
//!   factors can be produced ahead of time with
//!   [`PaillierPrivate::precompute_blinding`] (or in bulk with
//!   [`PaillierPrivate::precompute_blinding_batch`]) and spent in
//!   [`PaillierPublic::encrypt_with_blinding`], removing HOM encryption
//!   from the critical path. The proxy's blinding pool drains this API.
//! * **CRT acceleration (proxy-side, keys available).** The paper's proxy
//!   holds the factorisation of `n`, so both private-key operations run
//!   componentwise mod `p²` and `q²` and recombine:
//!   - *Decryption* exponentiates `c^{p-1} mod p²` and `c^{q-1} mod q²`
//!     (half-width moduli *and* half-width exponents) — ~4× over the
//!     full-width `c^λ mod n²`, which survives as
//!     [`PaillierPrivate::decrypt_noncrt`] for cross-checking.
//!   - *Blinding generation* uses `r^n ≡ (r^{q mod (p-1)} mod p)^p (mod p²)`
//!     (the binomial theorem kills every term of `y^p` past `y mod p`), so
//!     each half costs one quarter-width exponentiation plus one
//!     half-width exponentiation by a half-width exponent — ~3× over the
//!     full-width path, kept as
//!     [`PaillierPrivate::precompute_blinding_noncrt`].
//!
//!   Batch SUM decryption rides the same CRT path: on a long-lived
//!   proxy, [`PaillierPrivate::decrypt_i64_batch_on`] fans the cells out
//!   over a persistent [`WorkerPool`] (no per-query thread spawns, and
//!   the pending form lets the caller overlap row post-processing);
//!   [`PaillierPrivate::decrypt_i64_batch`] keeps the scoped-thread
//!   fan-out as the no-runtime fallback and benchmark baseline.
//! * Signed 64-bit values are encoded as residues: `v < 0` maps to
//!   `n + v`; decode folds values above `n/2` back to negatives.
//!
//! The DBMS-server half ([`PaillierPublic`]) never sees `p`, `q`, or the
//! CRT tables — it can only multiply ciphertexts.

#![forbid(unsafe_code)]

use cryptdb_bignum::{gen_prime, MontScratch, Montgomery, Ubig};
use cryptdb_runtime::{PendingMap, WorkerPool};
use std::sync::Arc;

/// Reusable working memory for repeated private-key operations: one
/// [`MontScratch`] serving every CRT context (p, q, p², q²). Batch
/// consumers — the worker-pool decrypt chunks and the blinding-pool
/// refill batches — hold one per chunk so the Montgomery kernels
/// allocate nothing after the first call.
#[derive(Default)]
pub struct PaillierScratch {
    ws: MontScratch,
}

impl PaillierScratch {
    /// An empty scratch; buffers are sized lazily by the first use.
    pub fn new() -> Self {
        PaillierScratch::default()
    }
}

/// Public Paillier parameters: the modulus and derived constants.
///
/// Cloneable so the DBMS server side (UDFs) can hold the public half —
/// the server multiplies ciphertexts but can never decrypt them. The
/// `mod n²` Montgomery context is shared (`Arc`) across clones, so
/// [`PaillierPublic::mul_plain`] never rebuilds the full-width tables.
#[derive(Clone)]
pub struct PaillierPublic {
    n: Ubig,
    n_squared: Ubig,
    half_n: Ubig,
    mont_n2: Arc<Montgomery>,
}

/// Private Paillier key (proxy side only).
pub struct PaillierPrivate {
    public: PaillierPublic,
    /// λ = lcm(p−1, q−1) — non-CRT reference path.
    lambda: Ubig,
    /// μ = L(g^λ mod n²)⁻¹ mod n — non-CRT reference path.
    mu: Ubig,
    crt: CrtKey,
}

/// CRT tables derived from the factorisation `n = p·q`.
struct CrtKey {
    p: Ubig,
    q: Ubig,
    p_squared: Ubig,
    q_squared: Ubig,
    mont_p: Montgomery,
    mont_q: Montgomery,
    mont_p2: Montgomery,
    mont_q2: Montgomery,
    /// p − 1 and q − 1: decryption exponents.
    pm1: Ubig,
    qm1: Ubig,
    /// q mod (p−1) and p mod (q−1): blinding first-stage exponents.
    q_mod_pm1: Ubig,
    p_mod_qm1: Ubig,
    /// hp = ((p−1)·q mod p)⁻¹ mod p (and symmetrically hq): the
    /// precomputed `L(g^{p−1} mod p²)⁻¹` — with `g = n + 1` it reduces to
    /// this closed form, no exponentiation needed.
    hp: Ubig,
    hq: Ubig,
    /// q⁻¹ mod p: Garner recombination of plaintexts.
    q_inv_p: Ubig,
    /// (p²)⁻¹ mod q²: recombination of blindings mod n².
    p2_inv_q2: Ubig,
}

/// A Paillier ciphertext (an element of Z*_{n²}).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(pub Ubig);

impl PaillierPublic {
    /// The modulus `n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Ciphertext length in bytes (⌈|n²|/8⌉) — the paper notes HOM
    /// ciphertexts are 2048 bits for a 1024-bit modulus (§3.1).
    pub fn ciphertext_len(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Encodes a signed 64-bit integer into Z_n.
    pub fn encode_i64(&self, v: i64) -> Ubig {
        if v >= 0 {
            Ubig::from_u64(v as u64)
        } else {
            self.n.sub(&Ubig::from_u64(v.unsigned_abs()))
        }
    }

    /// Decodes a Z_n residue back to a signed 64-bit integer.
    ///
    /// Returns `None` if the magnitude exceeds `i64` range.
    pub fn decode_i64(&self, m: &Ubig) -> Option<i64> {
        if m > &self.half_n {
            let neg = self.n.sub(m);
            let v = neg.to_u64()?;
            if v > i64::MAX as u64 + 1 {
                return None;
            }
            Some((v as i128).wrapping_neg() as i64)
        } else {
            let v = m.to_u64()?;
            i64::try_from(v).ok()
        }
    }

    /// Encrypts `m ∈ Z_n` with a pre-computed blinding factor `r^n mod n²`.
    ///
    /// This is the §3.5.2 fast path: `c = (1 + m·n) · rⁿ mod n²`.
    pub fn encrypt_with_blinding(&self, m: &Ubig, blinding: &Ubig) -> Ciphertext {
        let gm = Ubig::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        Ciphertext(gm.mod_mul(blinding, &self.n_squared))
    }

    /// Homomorphic addition: multiply ciphertexts mod n².
    ///
    /// This is exactly the server-side `HOM_ADD` UDF operation.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(a.0.mod_mul(&b.0, &self.n_squared))
    }

    /// The additive identity: an encryption of zero with trivial blinding.
    ///
    /// Used as the accumulator seed of the `HOM_SUM` aggregate UDF. It is
    /// not semantically secure by itself but is immediately multiplied by
    /// real ciphertexts.
    pub fn zero(&self) -> Ciphertext {
        Ciphertext(Ubig::one())
    }

    /// Homomorphic plaintext multiplication: `c^k mod n²` encrypts `m·k`.
    ///
    /// Runs on the key's cached `mod n²` Montgomery context — the seed
    /// rebuilt a full-width context per call via `Ubig::mod_exp`, which
    /// cost a modular inversion and an R² setup on every server-side
    /// `HOM_MUL`. The proxy side, which knows the factorisation, should
    /// prefer [`PaillierPrivate::mul_plain`] (CRT, ~4× again).
    pub fn mul_plain(&self, c: &Ciphertext, k: &Ubig) -> Ciphertext {
        Ciphertext(self.mont_n2.pow(&c.0, k))
    }

    /// Serialises a ciphertext to fixed-width big-endian bytes.
    pub fn ciphertext_to_bytes(&self, c: &Ciphertext) -> Vec<u8> {
        c.0.to_bytes_be(self.ciphertext_len())
    }

    /// Parses a ciphertext from bytes (as produced by
    /// [`Self::ciphertext_to_bytes`]).
    pub fn ciphertext_from_bytes(&self, bytes: &[u8]) -> Ciphertext {
        Ciphertext(Ubig::from_bytes_be(bytes))
    }
}

impl PaillierPrivate {
    /// Generates a key with an `n` of `bits` bits (so ciphertexts have
    /// `2·bits`). The paper uses 1024-bit `n` / 2048-bit ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn keygen<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 16, "modulus too small");
        let (p, q, n) = loop {
            let p = gen_prime(rng, bits / 2);
            let q = gen_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() == bits {
                break (p, q, n);
            }
        };
        let n_squared = n.mul(&n);
        let one = Ubig::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        let mont_n2 = Arc::new(Montgomery::new(n_squared.clone()));
        // μ = L(g^λ mod n²)⁻¹ mod n, with g = n + 1.
        let g = n.add(&one);
        let glambda = mont_n2.pow(&g, &lambda);
        let l = glambda.sub(&one).div_rem(&n).0;
        let mu = l.mod_inv(&n).expect("λ invertible for valid p, q");
        let half_n = n.shr(1);
        let crt = CrtKey::new(p, q);
        PaillierPrivate {
            public: PaillierPublic {
                n,
                n_squared,
                half_n,
                mont_n2,
            },
            lambda,
            mu,
            crt,
        }
    }

    /// The public half of the key.
    pub fn public(&self) -> &PaillierPublic {
        &self.public
    }

    /// Draws `r` uniform in Z*_n.
    fn sample_r<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> Ubig {
        loop {
            let r = Ubig::rand_below(rng, &self.public.n);
            if !r.is_zero() && r.gcd(&self.public.n).is_one() {
                return r;
            }
        }
    }

    /// Pre-computes one blinding factor `rⁿ mod n²` (§3.5.2) via the CRT
    /// fast path.
    pub fn precompute_blinding<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> Ubig {
        let r = self.sample_r(rng);
        self.blinding_from_r(&r)
    }

    /// Pre-computes `count` blinding factors in one call (pool refill),
    /// reusing one [`PaillierScratch`] across the whole batch so the
    /// Montgomery kernels allocate nothing after the first factor.
    pub fn precompute_blinding_batch<R: rand::RngCore + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<Ubig> {
        let mut ws = PaillierScratch::new();
        (0..count)
            .map(|_| {
                let r = self.sample_r(rng);
                self.blinding_from_r_with(&r, &mut ws)
            })
            .collect()
    }

    /// `rⁿ mod n²` by CRT: per prime, `rⁿ ≡ (r^{q mod (p−1)} mod p)^p
    /// (mod p²)` — the binomial theorem reduces `y^p mod p²` to
    /// `(y mod p)^p mod p²`, and Fermat reduces the inner exponent.
    pub fn blinding_from_r(&self, r: &Ubig) -> Ubig {
        self.blinding_from_r_with(r, &mut PaillierScratch::new())
    }

    /// [`Self::blinding_from_r`] with caller-held working memory — the
    /// blinding-pool refill batches reuse one scratch across a batch.
    pub fn blinding_from_r_with(&self, r: &Ubig, ws: &mut PaillierScratch) -> Ubig {
        let k = &self.crt;
        // Mod p²: inner quarter-width exponentiation, then ^p.
        let xp = k.mont_p.pow_with(r, &k.q_mod_pm1, &mut ws.ws);
        let a = k.mont_p2.pow_with(&xp, &k.p, &mut ws.ws);
        // Mod q².
        let xq = k.mont_q.pow_with(r, &k.p_mod_qm1, &mut ws.ws);
        let b = k.mont_q2.pow_with(&xq, &k.q, &mut ws.ws);
        k.recombine_mod_n2(&a, &b)
    }

    /// `rⁿ mod n²` by the direct full-width exponentiation (the pre-CRT
    /// path, kept as a cross-check and benchmark baseline).
    pub fn blinding_from_r_noncrt(&self, r: &Ubig) -> Ubig {
        self.public.mont_n2.pow(r, &self.public.n)
    }

    /// [`Self::precompute_blinding`] without CRT (benchmark baseline).
    pub fn precompute_blinding_noncrt<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> Ubig {
        let r = self.sample_r(rng);
        self.blinding_from_r_noncrt(&r)
    }

    /// Encrypts `m ∈ Z_n`, drawing fresh randomness.
    pub fn encrypt<R: rand::RngCore + ?Sized>(&self, m: &Ubig, rng: &mut R) -> Ciphertext {
        let blinding = self.precompute_blinding(rng);
        self.public.encrypt_with_blinding(m, &blinding)
    }

    /// Encrypts a signed 64-bit integer.
    pub fn encrypt_i64<R: rand::RngCore + ?Sized>(&self, v: i64, rng: &mut R) -> Ciphertext {
        self.encrypt(&self.public.encode_i64(v), rng)
    }

    /// Decrypts to a residue in Z_n via CRT: `m_p = L_p(c^{p−1} mod p²)·h_p
    /// mod p` (half-width modulus *and* exponent), symmetrically `m_q`,
    /// recombined with Garner's formula.
    pub fn decrypt(&self, c: &Ciphertext) -> Ubig {
        self.decrypt_with(c, &mut PaillierScratch::new())
    }

    /// [`Self::decrypt`] with caller-held working memory — the batch
    /// decrypt paths reuse one scratch across every cell of a chunk.
    pub fn decrypt_with(&self, c: &Ciphertext, ws: &mut PaillierScratch) -> Ubig {
        let k = &self.crt;
        let cp = k.mont_p2.pow_with(&c.0, &k.pm1, &mut ws.ws);
        let lp = cp.sub(&Ubig::one()).div_rem(&k.p).0;
        let mp = lp.mod_mul(&k.hp, &k.p);
        let cq = k.mont_q2.pow_with(&c.0, &k.qm1, &mut ws.ws);
        let lq = cq.sub(&Ubig::one()).div_rem(&k.q).0;
        let mq = lq.mod_mul(&k.hq, &k.q);
        // Garner: m = m_q + q·((m_p − m_q)·q⁻¹ mod p).
        let d = mp.mod_sub(&mq.rem(&k.p), &k.p);
        let t = d.mod_mul(&k.q_inv_p, &k.p);
        mq.add(&k.q.mul(&t))
    }

    /// Decrypts via the full-width `L(c^λ mod n²)·μ mod n` (the pre-CRT
    /// path, kept as a cross-check and benchmark baseline).
    pub fn decrypt_noncrt(&self, c: &Ciphertext) -> Ubig {
        let clambda = self.public.mont_n2.pow(&c.0, &self.lambda);
        let l = clambda.sub(&Ubig::one()).div_rem(&self.public.n).0;
        l.mod_mul(&self.mu, &self.public.n)
    }

    /// Decrypts to a signed 64-bit integer.
    ///
    /// Returns `None` on magnitude overflow (e.g. a sum that left i64).
    pub fn decrypt_i64(&self, c: &Ciphertext) -> Option<i64> {
        self.public.decode_i64(&self.decrypt(c))
    }

    /// [`Self::decrypt_i64`] with caller-held working memory.
    pub fn decrypt_i64_with(&self, c: &Ciphertext, ws: &mut PaillierScratch) -> Option<i64> {
        self.public.decode_i64(&self.decrypt_with(c, ws))
    }

    /// Homomorphic plaintext multiplication on the CRT fast path:
    /// `c^k` is computed mod `p²` and `q²` (half-width moduli) and
    /// recombined — the proxy-side counterpart of
    /// [`PaillierPublic::mul_plain`], for when the exponentiation runs
    /// where the factorisation is known (e.g. pre-scaling a constant
    /// before it is sent to the server).
    pub fn mul_plain(&self, c: &Ciphertext, k: &Ubig) -> Ciphertext {
        let t = &self.crt;
        let a = t.mont_p2.pow(&c.0, k);
        let b = t.mont_q2.pow(&c.0, k);
        Ciphertext(t.recombine_mod_n2(&a, &b))
    }

    /// Decrypts a batch of ciphertexts on a persistent [`WorkerPool`],
    /// blocking until every result is in. Results keep input order.
    ///
    /// Equivalent to the pending form plus an immediate wait (minus the
    /// dispatch copies when the work runs inline anyway); prefer
    /// [`Self::decrypt_i64_batch_pending`] when there is independent
    /// work to overlap with the decryption (the proxy overlaps row
    /// post-processing).
    pub fn decrypt_i64_batch_on(
        self: &Arc<Self>,
        pool: &WorkerPool,
        cts: &[Ciphertext],
    ) -> Vec<Option<i64>> {
        if pool.threads() <= 1 || cts.len() < 4 {
            let mut ws = PaillierScratch::new();
            return cts
                .iter()
                .map(|c| self.decrypt_i64_with(c, &mut ws))
                .collect();
        }
        self.decrypt_i64_batch_pending(pool, cts.to_vec()).wait()
    }

    /// Starts decrypting a batch of ciphertexts on a persistent
    /// [`WorkerPool`] and returns immediately; join with
    /// [`PendingMap::wait`]. Unlike [`Self::decrypt_i64_batch`], no
    /// threads are spawned per call — the chunks are queued to
    /// already-running workers, and the caller's thread stays free to
    /// pipeline other work (§3.5.2: crypto off the critical path).
    ///
    /// Small batches (under 4 ciphertexts) go to the pool as a single
    /// chunk: at that size the split overhead exceeds the parallelism.
    /// On a single-worker pool the batch is decrypted inline and
    /// returned pre-resolved — one hardware thread cannot overlap the
    /// decryption with the caller's work anyway, so the channel
    /// round-trip would be pure overhead.
    pub fn decrypt_i64_batch_pending(
        self: &Arc<Self>,
        pool: &WorkerPool,
        cts: Vec<Ciphertext>,
    ) -> PendingMap<Option<i64>> {
        if pool.threads() <= 1 {
            let mut ws = PaillierScratch::new();
            return PendingMap::ready(
                cts.iter()
                    .map(|c| self.decrypt_i64_with(c, &mut ws))
                    .collect(),
            );
        }
        let chunks = if cts.len() < 4 { 1 } else { pool.threads() };
        let key = self.clone();
        pool.map_chunked(cts, chunks, move |part| {
            let mut ws = PaillierScratch::new();
            part.iter()
                .map(|c| key.decrypt_i64_with(c, &mut ws))
                .collect()
        })
    }

    /// Decrypts a batch of ciphertexts (e.g. every `SUM`/`AVG` cell of a
    /// result set) over the shared CRT tables, fanning the independent
    /// decryptions out across scoped threads spawned for this call.
    ///
    /// This is the no-runtime fallback (and the benchmark baseline the
    /// pooled path is gated against); a long-lived proxy should hold a
    /// [`WorkerPool`] and use [`Self::decrypt_i64_batch_on`] instead.
    pub fn decrypt_i64_batch(&self, cts: &[Ciphertext]) -> Vec<Option<i64>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(cts.len());
        // At 256-bit test keys a decrypt is ~µs and spawn overhead wins;
        // at the paper's 1024 bits each decrypt is ~0.6 ms and the
        // fan-out is a clean multi-core speedup.
        if threads <= 1 || cts.len() < 4 {
            let mut ws = PaillierScratch::new();
            return cts
                .iter()
                .map(|c| self.decrypt_i64_with(c, &mut ws))
                .collect();
        }
        let chunk = cts.len().div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = cts
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut ws = PaillierScratch::new();
                        part.iter()
                            .map(|c| self.decrypt_i64_with(c, &mut ws))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("decrypt worker panicked"))
                .collect()
        })
    }
}

impl PaillierPrivate {
    /// A functional clone of this key whose Montgomery contexts force the
    /// quadratic CIOS/SOS kernels (the PR 2 kernel) — the benchmark
    /// baseline the two-phase Karatsuba + REDC kernel is compared
    /// against in the same run. Not for production use.
    pub fn with_cios_kernels(&self) -> PaillierPrivate {
        let public = &self.public;
        let crt = &self.crt;
        PaillierPrivate {
            public: PaillierPublic {
                n: public.n.clone(),
                n_squared: public.n_squared.clone(),
                half_n: public.half_n.clone(),
                mont_n2: Arc::new(Montgomery::with_kara_threshold(
                    public.n_squared.clone(),
                    usize::MAX,
                )),
            },
            lambda: self.lambda.clone(),
            mu: self.mu.clone(),
            crt: CrtKey::with_kara_threshold(crt.p.clone(), crt.q.clone(), usize::MAX),
        }
    }
}

impl CrtKey {
    fn new(p: Ubig, q: Ubig) -> Self {
        Self::with_kara_threshold(p, q, 0)
    }

    /// Builds the CRT tables; `threshold == 0` uses the tuned kernel
    /// defaults, anything else forces that Karatsuba crossover on every
    /// context (`usize::MAX` = pure CIOS/SOS, for benchmarking).
    fn with_kara_threshold(p: Ubig, q: Ubig, threshold: usize) -> Self {
        let one = Ubig::one();
        let p_squared = p.mul(&p);
        let q_squared = q.mul(&q);
        let pm1 = p.sub(&one);
        let qm1 = q.sub(&one);
        let hp = pm1
            .mul(&q)
            .rem(&p)
            .mod_inv(&p)
            .expect("q invertible mod p for distinct primes");
        let hq = qm1
            .mul(&p)
            .rem(&q)
            .mod_inv(&q)
            .expect("p invertible mod q for distinct primes");
        let q_inv_p = q.mod_inv(&p).expect("distinct primes");
        let p2_inv_q2 = p_squared.mod_inv(&q_squared).expect("distinct primes");
        let ctx = |m: Ubig| {
            if threshold == 0 {
                Montgomery::new(m)
            } else {
                Montgomery::with_kara_threshold(m, threshold)
            }
        };
        CrtKey {
            mont_p: ctx(p.clone()),
            mont_q: ctx(q.clone()),
            mont_p2: ctx(p_squared.clone()),
            mont_q2: ctx(q_squared.clone()),
            q_mod_pm1: q.rem(&pm1),
            p_mod_qm1: p.rem(&qm1),
            p,
            q,
            p_squared,
            q_squared,
            pm1,
            qm1,
            hp,
            hq,
            q_inv_p,
            p2_inv_q2,
        }
    }

    /// Recombines `x ≡ a (mod p²)`, `x ≡ b (mod q²)` into `x mod n²`.
    fn recombine_mod_n2(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let d = b.mod_sub(&a.rem(&self.q_squared), &self.q_squared);
        let t = d.mod_mul(&self.p2_inv_q2, &self.q_squared);
        a.add(&self.p_squared.mul(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> (PaillierPrivate, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        (PaillierPrivate::keygen(&mut rng, 256), rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (sk, mut rng) = key();
        for v in [0i64, 1, -1, 42, -42, i64::MAX / 2, i64::MIN / 2] {
            let c = sk.encrypt_i64(v, &mut rng);
            assert_eq!(sk.decrypt_i64(&c), Some(v), "v={v}");
        }
    }

    #[test]
    fn homomorphic_addition() {
        let (sk, mut rng) = key();
        let a = sk.encrypt_i64(1234, &mut rng);
        let b = sk.encrypt_i64(-234, &mut rng);
        let sum = sk.public().add(&a, &b);
        assert_eq!(sk.decrypt_i64(&sum), Some(1000));
    }

    #[test]
    fn sum_aggregate_like_udf() {
        let (sk, mut rng) = key();
        let values = [10i64, 20, 30, -5, 45];
        let mut acc = sk.public().zero();
        for &v in &values {
            let c = sk.encrypt_i64(v, &mut rng);
            acc = sk.public().add(&acc, &c);
        }
        assert_eq!(sk.decrypt_i64(&acc), Some(100));
    }

    #[test]
    fn plaintext_multiplication() {
        let (sk, mut rng) = key();
        let c = sk.encrypt_i64(7, &mut rng);
        let c3 = sk.public().mul_plain(&c, &Ubig::from_u64(3));
        assert_eq!(sk.decrypt_i64(&c3), Some(21));
    }

    #[test]
    fn mul_plain_crt_matches_public() {
        let (sk, mut rng) = key();
        let c = sk.encrypt_i64(-11, &mut rng);
        for k in [0u64, 1, 2, 3, 1000, u32::MAX as u64] {
            let k = Ubig::from_u64(k);
            // Identical group elements, not merely equal plaintexts.
            assert_eq!(sk.mul_plain(&c, &k), sk.public().mul_plain(&c, &k));
        }
        assert_eq!(
            sk.decrypt_i64(&sk.mul_plain(&c, &Ubig::from_u64(5))),
            Some(-55)
        );
    }

    #[test]
    fn pooled_batch_decrypt_matches_scoped() {
        let (sk, mut rng) = key();
        let sk = Arc::new(sk);
        let values: Vec<i64> = (0..37).map(|i| i * 1_000_003 - 18).collect();
        let cts: Vec<Ciphertext> = values
            .iter()
            .map(|&v| sk.encrypt_i64(v, &mut rng))
            .collect();
        let pool = WorkerPool::new(4);
        let scoped = sk.decrypt_i64_batch(&cts);
        let pooled = sk.decrypt_i64_batch_on(&pool, &cts);
        assert_eq!(pooled, scoped);
        // The pending form overlaps caller-side work with decryption.
        let pending = sk.decrypt_i64_batch_pending(&pool, cts.clone());
        let check: Vec<Option<i64>> = values.iter().map(|&v| Some(v)).collect();
        assert_eq!(pending.wait(), check);
        // Single-worker pools resolve inline (pre-resolved pending).
        let single = WorkerPool::new(1);
        assert_eq!(sk.decrypt_i64_batch_on(&single, &cts), check);
        assert_eq!(sk.decrypt_i64_batch_pending(&single, cts).wait(), check);
    }

    #[test]
    fn probabilistic_encryption() {
        let (sk, mut rng) = key();
        let a = sk.encrypt_i64(5, &mut rng);
        let b = sk.encrypt_i64(5, &mut rng);
        assert_ne!(a, b, "HOM must be IND-CPA probabilistic");
        assert_eq!(sk.decrypt_i64(&a), sk.decrypt_i64(&b));
    }

    #[test]
    fn precomputed_blinding_matches_fresh() {
        let (sk, mut rng) = key();
        let blinding = sk.precompute_blinding(&mut rng);
        let c = sk
            .public()
            .encrypt_with_blinding(&sk.public().encode_i64(99), &blinding);
        assert_eq!(sk.decrypt_i64(&c), Some(99));
    }

    #[test]
    fn cios_kernel_clone_agrees() {
        // The benchmark baseline (forced quadratic kernels) must be a
        // perfect functional clone of the tuned key.
        let (sk, mut rng) = key();
        let cios = sk.with_cios_kernels();
        for v in [0i64, 31337, -123_456_789] {
            let c = sk.encrypt_i64(v, &mut rng);
            assert_eq!(cios.decrypt(&c), sk.decrypt(&c), "v={v}");
            assert_eq!(cios.decrypt_i64(&c), Some(v));
        }
        let r = sk.sample_r(&mut rng);
        assert_eq!(cios.blinding_from_r(&r), sk.blinding_from_r(&r));
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        let (sk, mut rng) = key();
        let mut ws = PaillierScratch::new();
        for v in [5i64, -5, i64::MAX / 3] {
            let c = sk.encrypt_i64(v, &mut rng);
            assert_eq!(sk.decrypt_i64_with(&c, &mut ws), Some(v));
            assert_eq!(sk.decrypt_with(&c, &mut ws), sk.decrypt(&c));
        }
        for _ in 0..3 {
            let r = sk.sample_r(&mut rng);
            assert_eq!(sk.blinding_from_r_with(&r, &mut ws), sk.blinding_from_r(&r));
        }
    }

    #[test]
    fn crt_and_noncrt_agree() {
        let (sk, mut rng) = key();
        for v in [0i64, 7, -7, 123_456_789, i64::MIN / 3] {
            let c = sk.encrypt_i64(v, &mut rng);
            assert_eq!(sk.decrypt(&c), sk.decrypt_noncrt(&c), "v={v}");
        }
        // Same r must give the same blinding on both paths.
        for _ in 0..4 {
            let r = sk.sample_r(&mut rng);
            assert_eq!(sk.blinding_from_r(&r), sk.blinding_from_r_noncrt(&r));
        }
    }

    #[test]
    fn batch_decrypt_matches_single() {
        let (sk, mut rng) = key();
        let values = [3i64, -9, 1 << 40, 0];
        let cts: Vec<Ciphertext> = values
            .iter()
            .map(|&v| sk.encrypt_i64(v, &mut rng))
            .collect();
        let batch = sk.decrypt_i64_batch(&cts);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(batch[i], Some(v));
        }
    }

    #[test]
    fn blinding_batch_is_valid() {
        let (sk, mut rng) = key();
        let pool = sk.precompute_blinding_batch(&mut rng, 5);
        assert_eq!(pool.len(), 5);
        for (i, b) in pool.iter().enumerate() {
            let c = sk
                .public()
                .encrypt_with_blinding(&sk.public().encode_i64(i as i64), b);
            assert_eq!(sk.decrypt_i64(&c), Some(i as i64));
        }
    }

    #[test]
    fn ciphertext_bytes_roundtrip() {
        let (sk, mut rng) = key();
        let c = sk.encrypt_i64(31337, &mut rng);
        let bytes = sk.public().ciphertext_to_bytes(&c);
        assert_eq!(bytes.len(), sk.public().ciphertext_len());
        let back = sk.public().ciphertext_from_bytes(&bytes);
        assert_eq!(sk.decrypt_i64(&back), Some(31337));
    }
}
