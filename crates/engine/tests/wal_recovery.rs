//! Engine-level durability: attach a WAL, mutate, drop the engine,
//! recover, and compare full state — including snapshot replay, torn
//! tails, and transaction markers.

use cryptdb_engine::{Engine, FaultPlan, FsyncPolicy, TailState, Value, WalConfig};
use std::fs;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryptdb-engine-wal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dump(engine: &Engine) -> String {
    let mut out = String::new();
    for name in engine.table_names() {
        let cols: Vec<String> = engine
            .with_table(&name, |t| {
                t.columns().iter().map(|c| c.name.clone()).collect()
            })
            .unwrap();
        let sql = format!("SELECT {} FROM {name}", cols.join(", "));
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&engine.execute_sql(&sql).unwrap().canonical_text());
        out.push('\n');
    }
    out
}

fn seed(engine: &Engine) {
    engine
        .execute_sql(
            "CREATE TABLE users (id int, name text); \
             CREATE INDEX ON users (id); \
             INSERT INTO users (id, name) VALUES (1, 'alice'), (2, 'bob'), (3, 'carol'); \
             UPDATE users SET name = 'robert' WHERE id = 2; \
             DELETE FROM users WHERE id = 3; \
             CREATE TABLE empty_t (x int)",
        )
        .unwrap();
}

#[test]
fn recover_replays_full_log() {
    let dir = tmpdir("replay");
    let before = {
        let engine = Engine::new();
        engine.attach_wal(&dir, WalConfig::default()).unwrap();
        seed(&engine);
        assert!(engine.has_wal());
        assert!(engine.wal_seq() >= 6);
        dump(&engine)
    };
    let (recovered, rec) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert_eq!(dump(&recovered), before);
    assert_eq!(rec.report.tail, TailState::Clean);
    assert!(!rec.report.corruption_detected);
    // Rowid allocation resumes where the original run left off: new
    // inserts must not collide with replayed rows.
    recovered
        .execute_sql("INSERT INTO users (id, name) VALUES (4, 'dave')")
        .unwrap();
    let n = recovered
        .execute_sql("SELECT COUNT(id) FROM users")
        .unwrap();
    assert_eq!(n.scalar(), Some(&Value::Int(3)));
    // Indexes were rebuilt by replay.
    assert!(recovered.with_table("users", |t| t.has_index(0)).unwrap());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recover_from_snapshot_plus_suffix() {
    let dir = tmpdir("snapshot");
    let before = {
        let engine = Engine::new();
        engine.attach_wal(&dir, WalConfig::default()).unwrap();
        seed(&engine);
        let epoch = engine.snapshot_now().unwrap().expect("snapshot written");
        assert!(epoch >= 6);
        // Mutations after the snapshot live only in the log suffix.
        engine
            .execute_sql("INSERT INTO users (id, name) VALUES (9, 'post-snap')")
            .unwrap();
        dump(&engine)
    };
    let (recovered, rec) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert!(rec.report.snapshot_epoch.is_some());
    assert_eq!(rec.report.records_applied, 1, "only the suffix replays");
    assert_eq!(dump(&recovered), before);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn auto_snapshot_fires_on_interval() {
    let dir = tmpdir("autosnap");
    {
        let engine = Engine::new();
        engine
            .attach_wal(
                &dir,
                WalConfig {
                    snapshot_every: Some(3),
                    ..WalConfig::default()
                },
            )
            .unwrap();
        seed(&engine);
    }
    assert!(cryptdb_wal::snapshot_path(&dir).exists());
    let (recovered, rec) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert!(rec.report.snapshot_epoch.is_some());
    assert_eq!(recovered.table_names(), vec!["empty_t", "users"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_recovers_acknowledged_prefix() {
    let dir = tmpdir("torn");
    // Clean run to learn the final log length.
    {
        let engine = Engine::new();
        engine.attach_wal(&dir, WalConfig::default()).unwrap();
        seed(&engine);
    }
    let clean_len = fs::metadata(cryptdb_wal::log_path(&dir)).unwrap().len();
    let _ = fs::remove_dir_all(&dir);

    // Same run, killed 11 bytes before the end: the last statement's
    // record tears.
    let engine = Engine::new();
    engine
        .attach_wal(
            &dir,
            WalConfig {
                fault: Some(FaultPlan::kill_at(clean_len - 11)),
                ..WalConfig::default()
            },
        )
        .unwrap();
    let mut acked = 0;
    for sql in [
        "CREATE TABLE users (id int, name text)",
        "CREATE INDEX ON users (id)",
        "INSERT INTO users (id, name) VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')",
        "UPDATE users SET name = 'robert' WHERE id = 2",
        "DELETE FROM users WHERE id = 3",
        "CREATE TABLE empty_t (x int)",
    ] {
        if engine.execute_sql(sql).is_ok() {
            acked += 1;
        }
    }
    assert!(acked < 6, "the kill must reject at least one statement");
    drop(engine);

    // Oracle: a fresh in-memory engine executing exactly the
    // acknowledged prefix.
    let (recovered, rec) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert_eq!(rec.report.tail, TailState::Torn);
    let oracle = Engine::new();
    for sql in [
        "CREATE TABLE users (id int, name text)",
        "CREATE INDEX ON users (id)",
        "INSERT INTO users (id, name) VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')",
        "UPDATE users SET name = 'robert' WHERE id = 2",
        "DELETE FROM users WHERE id = 3",
        "CREATE TABLE empty_t (x int)",
    ]
    .iter()
    .take(acked)
    {
        oracle.execute_sql(sql).unwrap();
    }
    assert_eq!(dump(&recovered), dump(&oracle));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn transaction_markers_replay_rollback() {
    let dir = tmpdir("txn");
    let before = {
        let engine = Engine::new();
        engine.attach_wal(&dir, WalConfig::default()).unwrap();
        engine
            .execute_sql(
                "CREATE TABLE t (x int); \
                 INSERT INTO t (x) VALUES (1); \
                 BEGIN; \
                 INSERT INTO t (x) VALUES (2); \
                 ROLLBACK; \
                 INSERT INTO t (x) VALUES (3)",
            )
            .unwrap();
        dump(&engine)
    };
    let (recovered, _) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert_eq!(dump(&recovered), before);
    let r = recovered.execute_sql("SELECT COUNT(x) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)), "rollback replayed");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn attach_refuses_existing_log() {
    let dir = tmpdir("refuse");
    {
        let engine = Engine::new();
        engine.attach_wal(&dir, WalConfig::default()).unwrap();
        engine.execute_sql("CREATE TABLE t (x int)").unwrap();
    }
    let fresh = Engine::new();
    assert!(fresh.attach_wal(&dir, WalConfig::default()).is_err());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_n_policy_survives_explicit_sync() {
    let dir = tmpdir("everyn");
    {
        let engine = Engine::new();
        engine
            .attach_wal(
                &dir,
                WalConfig {
                    fsync: FsyncPolicy::EveryN(4),
                    ..WalConfig::default()
                },
            )
            .unwrap();
        seed(&engine);
        engine.wal_sync().unwrap();
    }
    let (recovered, _) = Engine::recover(&dir, WalConfig::default()).unwrap();
    assert_eq!(recovered.table_names(), vec!["empty_t", "users"]);
    let _ = fs::remove_dir_all(&dir);
}
