//! End-to-end SQL behaviour tests for the engine.

use cryptdb_engine::{AggregateUdf, Engine, QueryResult, Value};
use std::sync::Arc;

fn db() -> Engine {
    let e = Engine::new();
    e.execute_sql(
        "CREATE TABLE emp (id int, name text, dept text, salary int); \
         CREATE INDEX ON emp (id); \
         CREATE INDEX ON emp (salary); \
         INSERT INTO emp (id, name, dept, salary) VALUES \
           (1, 'alice', 'sales', 60000), \
           (2, 'bob', 'sales', 55000), \
           (3, 'carol', 'eng', 80000), \
           (4, 'dave', 'eng', 75000), \
           (5, 'eve', 'hr', 50000)",
    )
    .unwrap();
    e.execute_sql(
        "CREATE TABLE dept (dname text, budget int); \
         INSERT INTO dept (dname, budget) VALUES ('sales', 100), ('eng', 200), ('hr', 50)",
    )
    .unwrap();
    e
}

fn ints(r: &QueryResult) -> Vec<i64> {
    r.rows()
        .iter()
        .map(|row| row[0].as_int().unwrap())
        .collect()
}

fn strs(r: &QueryResult) -> Vec<String> {
    r.rows()
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect()
}

#[test]
fn point_select_with_index() {
    let e = db();
    let r = e.execute_sql("SELECT name FROM emp WHERE id = 3").unwrap();
    assert_eq!(strs(&r), vec!["carol"]);
}

#[test]
fn range_select() {
    let e = db();
    let r = e
        .execute_sql("SELECT name FROM emp WHERE salary > 60000 ORDER BY salary")
        .unwrap();
    assert_eq!(strs(&r), vec!["dave", "carol"]);
    let r = e
        .execute_sql("SELECT name FROM emp WHERE salary BETWEEN 55000 AND 75000 ORDER BY name")
        .unwrap();
    assert_eq!(strs(&r), vec!["alice", "bob", "dave"]);
}

#[test]
fn aggregates() {
    let e = db();
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(5))
    );
    assert_eq!(
        e.execute_sql("SELECT SUM(salary) FROM emp")
            .unwrap()
            .scalar(),
        Some(&Value::Int(320_000))
    );
    assert_eq!(
        e.execute_sql("SELECT MIN(salary) FROM emp")
            .unwrap()
            .scalar(),
        Some(&Value::Int(50_000))
    );
    assert_eq!(
        e.execute_sql("SELECT MAX(salary) FROM emp")
            .unwrap()
            .scalar(),
        Some(&Value::Int(80_000))
    );
    assert_eq!(
        e.execute_sql("SELECT AVG(salary) FROM emp")
            .unwrap()
            .scalar(),
        Some(&Value::Int(64_000))
    );
}

#[test]
fn group_by_having() {
    let e = db();
    let r = e
        .execute_sql(
            "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept \
             HAVING COUNT(*) > 1 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0][0], Value::Str("eng".into()));
    assert_eq!(r.rows()[0][2], Value::Int(155_000));
    assert_eq!(r.rows()[1][0], Value::Str("sales".into()));
}

#[test]
fn explicit_join() {
    let e = db();
    let r = e
        .execute_sql(
            "SELECT emp.name, dept.budget FROM emp JOIN dept ON emp.dept = dept.dname \
             WHERE dept.budget >= 100 ORDER BY emp.name",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 4);
    assert_eq!(r.rows()[0][0], Value::Str("alice".into()));
    assert_eq!(r.rows()[0][1], Value::Int(100));
}

#[test]
fn implicit_join() {
    let e = db();
    let r = e
        .execute_sql(
            "SELECT COUNT(*) FROM emp, dept WHERE emp.dept = dept.dname AND dept.budget > 60",
        )
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));
}

#[test]
fn self_join_with_aliases() {
    let e = db();
    let r = e
        .execute_sql(
            "SELECT a.name FROM emp a, emp b \
             WHERE a.dept = b.dept AND a.id <> b.id ORDER BY a.name",
        )
        .unwrap();
    assert_eq!(strs(&r), vec!["alice", "bob", "carol", "dave"]);
}

#[test]
fn distinct_and_limit() {
    let e = db();
    let r = e
        .execute_sql("SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2")
        .unwrap();
    assert_eq!(strs(&r), vec!["eng", "hr"]);
}

#[test]
fn order_by_desc_and_alias() {
    let e = db();
    let r = e
        .execute_sql("SELECT name, salary AS s FROM emp ORDER BY s DESC LIMIT 3")
        .unwrap();
    assert_eq!(
        r.rows()
            .iter()
            .map(|r| r[1].as_int().unwrap())
            .collect::<Vec<_>>(),
        vec![80000, 75000, 60000]
    );
}

#[test]
fn update_and_delete() {
    let e = db();
    let r = e
        .execute_sql("UPDATE emp SET salary = salary + 1000 WHERE dept = 'sales'")
        .unwrap();
    assert_eq!(r, QueryResult::Affected(2));
    assert_eq!(
        e.execute_sql("SELECT salary FROM emp WHERE id = 1")
            .unwrap()
            .scalar(),
        Some(&Value::Int(61_000))
    );
    let r = e
        .execute_sql("DELETE FROM emp WHERE salary < 52000")
        .unwrap();
    assert_eq!(r, QueryResult::Affected(1));
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(4))
    );
}

#[test]
fn like_predicate() {
    let e = db();
    let r = e
        .execute_sql("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name")
        .unwrap();
    assert_eq!(strs(&r), vec!["alice", "carol", "dave"]);
    let r = e
        .execute_sql("SELECT name FROM emp WHERE name LIKE '_ob'")
        .unwrap();
    assert_eq!(strs(&r), vec!["bob"]);
}

#[test]
fn in_list_and_not() {
    let e = db();
    let r = e
        .execute_sql("SELECT id FROM emp WHERE dept IN ('sales', 'hr') ORDER BY id")
        .unwrap();
    assert_eq!(ints(&r), vec![1, 2, 5]);
    let r = e
        .execute_sql("SELECT id FROM emp WHERE dept NOT IN ('sales', 'hr') ORDER BY id")
        .unwrap();
    assert_eq!(ints(&r), vec![3, 4]);
}

#[test]
fn null_semantics() {
    let e = Engine::new();
    e.execute_sql("CREATE TABLE t (a int, b int)").unwrap();
    e.execute_sql("INSERT INTO t (a, b) VALUES (1, 10), (2, NULL), (3, 30)")
        .unwrap();
    // NULL comparisons never match.
    let r = e.execute_sql("SELECT a FROM t WHERE b = NULL").unwrap();
    assert!(r.rows().is_empty());
    let r = e.execute_sql("SELECT a FROM t WHERE b > 5").unwrap();
    assert_eq!(ints(&r), vec![1, 3]);
    let r = e.execute_sql("SELECT a FROM t WHERE b IS NULL").unwrap();
    assert_eq!(ints(&r), vec![2]);
    let r = e
        .execute_sql("SELECT a FROM t WHERE b IS NOT NULL ORDER BY a")
        .unwrap();
    assert_eq!(ints(&r), vec![1, 3]);
    // Aggregates skip NULLs; COUNT(*) does not.
    assert_eq!(
        e.execute_sql("SELECT COUNT(b) FROM t").unwrap().scalar(),
        Some(&Value::Int(2))
    );
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Int(3))
    );
    assert_eq!(
        e.execute_sql("SELECT SUM(b) FROM t").unwrap().scalar(),
        Some(&Value::Int(40))
    );
}

#[test]
fn transactions_rollback() {
    let e = db();
    e.execute_sql("BEGIN").unwrap();
    e.execute_sql("DELETE FROM emp").unwrap();
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(0))
    );
    e.execute_sql("ROLLBACK").unwrap();
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(5))
    );
    e.execute_sql("BEGIN").unwrap();
    e.execute_sql("DELETE FROM emp WHERE id = 1").unwrap();
    e.execute_sql("COMMIT").unwrap();
    assert_eq!(
        e.execute_sql("SELECT COUNT(*) FROM emp").unwrap().scalar(),
        Some(&Value::Int(4))
    );
}

#[test]
fn scalar_udf_in_where_and_set() {
    let e = db();
    e.register_scalar_udf("plus_one", |args| {
        Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
    });
    let r = e
        .execute_sql("SELECT name FROM emp WHERE PLUS_ONE(id) = 4")
        .unwrap();
    assert_eq!(strs(&r), vec!["carol"]);
    e.execute_sql("UPDATE emp SET salary = PLUS_ONE(salary) WHERE id = 1")
        .unwrap();
    assert_eq!(
        e.execute_sql("SELECT salary FROM emp WHERE id = 1")
            .unwrap()
            .scalar(),
        Some(&Value::Int(60_001))
    );
}

#[test]
fn aggregate_udf() {
    let e = db();
    e.register_aggregate_udf(
        "product",
        AggregateUdf {
            init: Value::Int(1),
            step: Arc::new(|acc, v| {
                Ok(Value::Int(acc.as_int().unwrap() * v.as_int().unwrap_or(1)))
            }),
        },
    );
    let r = e.execute_sql("SELECT PRODUCT(budget) FROM dept").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(100 * 200 * 50)));
}

#[test]
fn builtin_string_and_date_functions() {
    let e = Engine::new();
    e.execute_sql("CREATE TABLE ev (name text, day int)")
        .unwrap();
    e.execute_sql("INSERT INTO ev (name, day) VALUES ('Standup', 20260611), ('Review', 20251224)")
        .unwrap();
    let r = e
        .execute_sql("SELECT LOWER(name) FROM ev WHERE YEAR(day) = 2026")
        .unwrap();
    assert_eq!(strs(&r), vec!["standup"]);
    let r = e
        .execute_sql("SELECT name FROM ev WHERE MONTH(day) = 12")
        .unwrap();
    assert_eq!(strs(&r), vec!["Review"]);
    let r = e
        .execute_sql("SELECT SUBSTR(name, 1, 3) FROM ev ORDER BY day")
        .unwrap();
    assert_eq!(strs(&r), vec!["Rev", "Sta"]);
}

#[test]
fn multi_row_insert_and_wildcard() {
    let e = db();
    let r = e.execute_sql("SELECT * FROM dept ORDER BY budget").unwrap();
    let QueryResult::Rows { columns, rows } = r else {
        panic!()
    };
    assert_eq!(columns, vec!["dname", "budget"]);
    assert_eq!(rows.len(), 3);
}

#[test]
fn errors() {
    let e = db();
    assert!(e.execute_sql("SELECT * FROM missing").is_err());
    assert!(e.execute_sql("SELECT nocol FROM emp").is_err());
    assert!(e.execute_sql("CREATE TABLE emp (x int)").is_err());
    assert!(e.execute_sql("ROLLBACK").is_err());
    assert!(e.execute_sql("SELECT NOSUCHFUNC(id) FROM emp").is_err());
}

#[test]
fn group_by_with_expression_key() {
    let e = db();
    let r = e
        .execute_sql("SELECT salary / 10000, COUNT(*) FROM emp GROUP BY salary / 10000 ORDER BY salary / 10000")
        .unwrap();
    // Buckets: 5 (50k, 55k), 6 (60k), 7 (75k), 8 (80k).
    assert_eq!(r.rows().len(), 4);
    assert_eq!(r.rows()[0][1], Value::Int(2));
}

#[test]
fn concurrent_reads_and_writes() {
    let e = Arc::new(db());
    let mut handles = Vec::new();
    for t in 0..4 {
        let e = e.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                if t % 2 == 0 {
                    e.execute_sql("SELECT COUNT(*) FROM emp").unwrap();
                } else {
                    e.execute_sql(&format!(
                        "INSERT INTO dept (dname, budget) VALUES ('d{t}_{i}', {i})"
                    ))
                    .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let r = e.execute_sql("SELECT COUNT(*) FROM dept").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3 + 100)));
}

#[test]
fn canonical_text_is_order_insensitive() {
    let e = db();
    // Same rows inserted in different orders must dump identically;
    // different content must not.
    let a = e
        .execute_sql("SELECT name, salary FROM emp ORDER BY salary")
        .unwrap();
    let b = e
        .execute_sql("SELECT name, salary FROM emp ORDER BY name")
        .unwrap();
    assert_eq!(a.canonical_text(), b.canonical_text());
    let c = e.execute_sql("SELECT name FROM emp").unwrap();
    assert_ne!(a.canonical_text(), c.canonical_text());
    // NULL, int, str and bytes all have distinct stable renderings.
    e.execute_sql("CREATE TABLE m (v int)").unwrap();
    e.execute_sql("INSERT INTO m (v) VALUES (NULL); INSERT INTO m (v) VALUES (7)")
        .unwrap();
    let d = e.execute_sql("SELECT v FROM m").unwrap();
    assert_eq!(d.canonical_text(), "7\nNULL");
}
