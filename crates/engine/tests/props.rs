//! Property tests: the SQL executor against a naive in-memory model,
//! plus shard-partitioning invariants of the hash-sharded table store.

use cryptdb_engine::{ColumnMeta, Engine, Table, Value};
use cryptdb_sqlparser::ColumnType;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
struct Row {
    a: i64,
    b: i64,
    s: String,
}

fn load(rows: &[Row]) -> Engine {
    let e = Engine::new();
    e.execute_sql("CREATE TABLE t (a int, b int, s text); CREATE INDEX ON t (a)")
        .unwrap();
    for r in rows {
        e.execute_sql(&format!(
            "INSERT INTO t (a, b, s) VALUES ({}, {}, '{}')",
            r.a, r.b, r.s
        ))
        .unwrap();
    }
    e
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (-20i64..20, -100i64..100, "[a-d]{1,3}").prop_map(|(a, b, s)| Row { a, b, s })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equality_filter_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                     probe in -20i64..20) {
        let e = load(&rows);
        let got = e.execute_sql(&format!("SELECT b FROM t WHERE a = {probe}")).unwrap();
        let mut got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expect: Vec<i64> = rows.iter().filter(|r| r.a == probe).map(|r| r.b).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn range_filter_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                  lo in -20i64..20, width in 0i64..15) {
        let e = load(&rows);
        let hi = lo + width;
        let got = e
            .execute_sql(&format!("SELECT a FROM t WHERE a BETWEEN {lo} AND {hi}"))
            .unwrap();
        let mut got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expect: Vec<i64> =
            rows.iter().filter(|r| r.a >= lo && r.a <= hi).map(|r| r.a).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn aggregates_match_model(rows in proptest::collection::vec(row_strategy(), 0..40)) {
        let e = load(&rows);
        let count = e.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.scalar(), Some(&Value::Int(rows.len() as i64)));
        let sum = e.execute_sql("SELECT SUM(b) FROM t").unwrap();
        if rows.is_empty() {
            prop_assert_eq!(sum.scalar(), Some(&Value::Null));
        } else {
            let expect: i64 = rows.iter().map(|r| r.b).sum();
            prop_assert_eq!(sum.scalar(), Some(&Value::Int(expect)));
            let min = e.execute_sql("SELECT MIN(b) FROM t").unwrap();
            prop_assert_eq!(min.scalar(),
                            Some(&Value::Int(rows.iter().map(|r| r.b).min().unwrap())));
        }
    }

    #[test]
    fn group_by_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40)) {
        let e = load(&rows);
        let got = e
            .execute_sql("SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s")
            .unwrap();
        let mut expect: std::collections::BTreeMap<String, i64> = Default::default();
        for r in &rows {
            *expect.entry(r.s.clone()).or_default() += 1;
        }
        let got: Vec<(String, i64)> = got
            .rows()
            .iter()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn order_by_limit_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                    limit in 0u64..10) {
        let e = load(&rows);
        let got = e
            .execute_sql(&format!("SELECT b FROM t ORDER BY b LIMIT {limit}"))
            .unwrap();
        let got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.b).collect();
        expect.sort_unstable();
        expect.truncate(limit as usize);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn delete_then_count(rows in proptest::collection::vec(row_strategy(), 0..40),
                         probe in -20i64..20) {
        let e = load(&rows);
        let deleted = e
            .execute_sql(&format!("DELETE FROM t WHERE a < {probe}"))
            .unwrap();
        let expect_deleted = rows.iter().filter(|r| r.a < probe).count();
        prop_assert_eq!(deleted, cryptdb_engine::QueryResult::Affected(expect_deleted));
        let count = e.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.scalar(),
                        Some(&Value::Int((rows.len() - expect_deleted) as i64)));
    }
}

// ---- shard invariants (raw Table API) ----

/// One random mutation against a raw [`Table`] and its model.
#[derive(Clone, Debug)]
enum ShardOp {
    Insert(i64, i64),
    /// Delete the nth live row (modulo the live count).
    Delete(usize),
    /// Rewrite column 0 of the nth live row (modulo the live count).
    Update(usize, i64),
    /// (Re)build the index on column 0 or 1.
    CreateIndex(u8),
}

fn shard_op_strategy() -> impl Strategy<Value = ShardOp> {
    // Weighted selector (the vendored proptest stub has no prop_oneof):
    // half the ops insert, the rest split between delete / update /
    // index rebuilds.
    (0u8..8, -10i64..10, -50i64..50, 0usize..64).prop_map(|(sel, a, b, i)| match sel {
        0..=3 => ShardOp::Insert(a, b),
        4 | 5 => ShardOp::Delete(i),
        6 => ShardOp::Update(i, a),
        _ => ShardOp::CreateIndex((b & 1) as u8),
    })
}

fn shard_table(shards: usize) -> Table {
    Table::with_shard_count(
        "t",
        vec![
            ColumnMeta {
                name: "a".into(),
                ty: ColumnType::Int,
            },
            ColumnMeta {
                name: "b".into(),
                ty: ColumnType::Int,
            },
        ],
        shards,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After an arbitrary op sequence: every rid lives in exactly the
    /// shard it hashes to, full-table iteration equals the union of the
    /// per-shard iterations (both equal to the model), and every
    /// secondary index agrees with row state.
    #[test]
    fn shard_partition_and_indexes_stay_consistent(
        ops in proptest::collection::vec(shard_op_strategy(), 0..120),
        shards in 1usize..9,
    ) {
        let t = shard_table(shards);
        t.create_index("a").unwrap();
        let mut model: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
        for op in ops {
            match op {
                ShardOp::Insert(a, b) => {
                    let rid = t.insert(vec![Value::Int(a), Value::Int(b)]);
                    prop_assert!(model.insert(rid, (a, b)).is_none(), "rid reused");
                }
                ShardOp::Delete(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let rid = *model.keys().nth(i % model.len()).unwrap();
                    prop_assert!(t.delete(rid));
                    model.remove(&rid);
                }
                ShardOp::Update(i, v) => {
                    if model.is_empty() {
                        continue;
                    }
                    let rid = *model.keys().nth(i % model.len()).unwrap();
                    t.update_cell(rid, 0, Value::Int(v));
                    model.get_mut(&rid).unwrap().0 = v;
                }
                ShardOp::CreateIndex(c) => {
                    t.create_index(if c == 0 { "a" } else { "b" }).unwrap();
                }
            }
        }
        let view = t.read_view();
        // Full iteration is rid-ascending and equals the model.
        let full: Vec<(u64, i64, i64)> = view
            .iter()
            .map(|(rid, r)| (rid, r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        let expect: Vec<(u64, i64, i64)> =
            model.iter().map(|(&rid, &(a, b))| (rid, a, b)).collect();
        prop_assert_eq!(&full, &expect);
        // Every rid lives in exactly the shard it hashes to; the union
        // of shard iterations is the full iteration.
        let mut union: Vec<(u64, i64, i64)> = Vec::new();
        for s in 0..view.shard_count() {
            for (rid, r) in view.shard_iter(s) {
                prop_assert_eq!(t.shard_of(rid), s, "rid in wrong shard");
                union.push((rid, r[0].as_int().unwrap(), r[1].as_int().unwrap()));
            }
        }
        union.sort_unstable();
        prop_assert_eq!(&union, &expect);
        // Every index agrees with row state, in both directions.
        for col in view.indexed_columns() {
            for (&rid, &(a, b)) in &model {
                let v = if col == 0 { a } else { b };
                let ids = view.index_lookup(col, &Value::Int(v)).unwrap();
                prop_assert!(ids.contains(&rid), "row missing from its index entry");
            }
            // Reverse direction: an unbounded index range walks every
            // entry — each must resolve to a live row, and the total
            // must equal the live row count (no lingering dead rids).
            let all_indexed = view.index_range(col, None, None).unwrap();
            prop_assert_eq!(all_indexed.len(), model.len(), "index cardinality drift");
            for rid in all_indexed {
                prop_assert!(view.row(rid).is_some(), "index points at dead rid");
            }
        }
    }
}

/// `create_index` racing concurrent writers must land a consistent
/// index: it takes every shard write lock, and each writer maintains
/// its own shard's fragments, so once the dust settles the index and
/// row state agree exactly.
#[test]
fn create_index_concurrent_with_writes_is_consistent() {
    const THREADS: usize = 4;
    const OPS: usize = 200;
    let t = shard_table(8);
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let t = &t;
            scope.spawn(move || {
                let mut mine: Vec<u64> = Vec::new();
                for i in 0..OPS {
                    let rid = t.insert(vec![
                        Value::Int(tid as i64),
                        Value::Int((tid * OPS + i) as i64),
                    ]);
                    mine.push(rid);
                    // Drop every third row again, so the rebuild races
                    // against removals too, not just inserts.
                    if i % 3 == 0 {
                        let victim = mine.remove(i % mine.len());
                        assert!(t.delete(victim));
                    }
                }
            });
        }
        let t = &t;
        scope.spawn(move || {
            for _ in 0..16 {
                t.create_index("a").unwrap();
                std::thread::yield_now();
            }
        });
    });
    let view = t.read_view();
    assert_eq!(view.indexed_columns(), vec![0]);
    let mut live = 0usize;
    for (rid, row) in view.iter() {
        let ids = view
            .index_lookup(0, &row[0])
            .expect("index exists after quiesce");
        assert!(ids.contains(&rid), "live row missing from index");
        live += 1;
    }
    let mut indexed = 0usize;
    for tid in 0..THREADS as i64 {
        for rid in view.index_lookup(0, &Value::Int(tid)).unwrap() {
            let row = view.row(rid).expect("index points at a live row");
            assert_eq!(row[0], Value::Int(tid));
            indexed += 1;
        }
    }
    assert_eq!(indexed, live, "index cardinality drift after races");
    assert_eq!(live, THREADS * (OPS - OPS.div_ceil(3)));
}
