//! Property tests: the SQL executor against a naive in-memory model.

use cryptdb_engine::{Engine, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Row {
    a: i64,
    b: i64,
    s: String,
}

fn load(rows: &[Row]) -> Engine {
    let e = Engine::new();
    e.execute_sql("CREATE TABLE t (a int, b int, s text); CREATE INDEX ON t (a)")
        .unwrap();
    for r in rows {
        e.execute_sql(&format!(
            "INSERT INTO t (a, b, s) VALUES ({}, {}, '{}')",
            r.a, r.b, r.s
        ))
        .unwrap();
    }
    e
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (-20i64..20, -100i64..100, "[a-d]{1,3}").prop_map(|(a, b, s)| Row { a, b, s })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equality_filter_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                     probe in -20i64..20) {
        let e = load(&rows);
        let got = e.execute_sql(&format!("SELECT b FROM t WHERE a = {probe}")).unwrap();
        let mut got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expect: Vec<i64> = rows.iter().filter(|r| r.a == probe).map(|r| r.b).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn range_filter_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                  lo in -20i64..20, width in 0i64..15) {
        let e = load(&rows);
        let hi = lo + width;
        let got = e
            .execute_sql(&format!("SELECT a FROM t WHERE a BETWEEN {lo} AND {hi}"))
            .unwrap();
        let mut got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        got.sort_unstable();
        let mut expect: Vec<i64> =
            rows.iter().filter(|r| r.a >= lo && r.a <= hi).map(|r| r.a).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn aggregates_match_model(rows in proptest::collection::vec(row_strategy(), 0..40)) {
        let e = load(&rows);
        let count = e.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.scalar(), Some(&Value::Int(rows.len() as i64)));
        let sum = e.execute_sql("SELECT SUM(b) FROM t").unwrap();
        if rows.is_empty() {
            prop_assert_eq!(sum.scalar(), Some(&Value::Null));
        } else {
            let expect: i64 = rows.iter().map(|r| r.b).sum();
            prop_assert_eq!(sum.scalar(), Some(&Value::Int(expect)));
            let min = e.execute_sql("SELECT MIN(b) FROM t").unwrap();
            prop_assert_eq!(min.scalar(),
                            Some(&Value::Int(rows.iter().map(|r| r.b).min().unwrap())));
        }
    }

    #[test]
    fn group_by_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40)) {
        let e = load(&rows);
        let got = e
            .execute_sql("SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s")
            .unwrap();
        let mut expect: std::collections::BTreeMap<String, i64> = Default::default();
        for r in &rows {
            *expect.entry(r.s.clone()).or_default() += 1;
        }
        let got: Vec<(String, i64)> = got
            .rows()
            .iter()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn order_by_limit_matches_model(rows in proptest::collection::vec(row_strategy(), 0..40),
                                    limit in 0u64..10) {
        let e = load(&rows);
        let got = e
            .execute_sql(&format!("SELECT b FROM t ORDER BY b LIMIT {limit}"))
            .unwrap();
        let got: Vec<i64> = got.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|r| r.b).collect();
        expect.sort_unstable();
        expect.truncate(limit as usize);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn delete_then_count(rows in proptest::collection::vec(row_strategy(), 0..40),
                         probe in -20i64..20) {
        let e = load(&rows);
        let deleted = e
            .execute_sql(&format!("DELETE FROM t WHERE a < {probe}"))
            .unwrap();
        let expect_deleted = rows.iter().filter(|r| r.a < probe).count();
        prop_assert_eq!(deleted, cryptdb_engine::QueryResult::Affected(expect_deleted));
        let count = e.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(count.scalar(),
                        Some(&Value::Int((rows.len() - expect_deleted) as i64)));
    }
}
