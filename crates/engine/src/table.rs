//! Hash-sharded table storage with secondary B-tree indexes.
//!
//! Row storage is partitioned into a fixed power-of-two number of
//! rid-hashed shards (`shard_of(rid) = rid & mask`), each behind its
//! own `RwLock`, so writers touching disjoint shards proceed in
//! parallel. The table-level lock in the engine catalog is demoted to
//! a schema/DDL lock: DML holds it shared and takes only the shard
//! locks it touches, schema changes and snapshots hold it exclusively.
//!
//! Lock order (global, deadlock-free): catalog → table schema lock →
//! shard locks in ascending index order → WAL mutex. Every multi-shard
//! acquisition in this module ([`Table::read_view`],
//! [`Table::lock_shards`], [`Table::lock_all_shards_write`], `Clone`)
//! acquires ascending and holds until drop.
//!
//! Because consecutive rowids round-robin across shards, concurrent
//! inserters almost never collide on a shard lock.

use crate::error::EngineError;
use crate::value::{OrdValue, Value};
use cryptdb_sqlparser::ColumnType;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{btree_map, BTreeMap, BTreeSet, HashMap};
use std::iter::Peekable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Column metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    pub ty: ColumnType,
}

/// Shard count used by [`Table::new`]: `CRYPTDB_TABLE_SHARDS` rounded
/// up to a power of two (clamped to 1..=1024), default 16.
fn default_shard_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("CRYPTDB_TABLE_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(16)
            .clamp(1, 1024)
            .next_power_of_two()
    })
}

/// One hash shard: a rowid-keyed row map plus this shard's fragment of
/// every secondary index (column position → value → rowids).
#[derive(Clone, Default)]
struct Shard {
    rows: BTreeMap<u64, Vec<Value>>,
    indexes: HashMap<usize, BTreeMap<OrdValue, BTreeSet<u64>>>,
}

impl Shard {
    fn insert_row(&mut self, rowid: u64, row: Vec<Value>) {
        for (&col, index) in self.indexes.iter_mut() {
            index
                .entry(OrdValue(row[col].clone()))
                .or_default()
                .insert(rowid);
        }
        self.rows.insert(rowid, row);
    }

    fn remove_row(&mut self, rowid: u64) -> bool {
        let Some(row) = self.rows.remove(&rowid) else {
            return false;
        };
        for (&col, index) in self.indexes.iter_mut() {
            let key = OrdValue(row[col].clone());
            if let Some(set) = index.get_mut(&key) {
                set.remove(&rowid);
                if set.is_empty() {
                    index.remove(&key);
                }
            }
        }
        true
    }

    fn set_cell(&mut self, rowid: u64, col: usize, value: Value) {
        let Some(row) = self.rows.get_mut(&rowid) else {
            return;
        };
        let old = std::mem::replace(&mut row[col], value.clone());
        if let Some(index) = self.indexes.get_mut(&col) {
            let key = OrdValue(old);
            if let Some(set) = index.get_mut(&key) {
                set.remove(&rowid);
                if set.is_empty() {
                    index.remove(&key);
                }
            }
            index.entry(OrdValue(value)).or_default().insert(rowid);
        }
    }
}

/// An in-memory table: immutable schema + rid-hashed row shards, each
/// behind its own `RwLock`, + a lock-free rowid allocator.
pub struct Table {
    name: String,
    columns: Vec<ColumnMeta>,
    col_index: HashMap<String, usize>,
    shards: Box<[RwLock<Shard>]>,
    shard_mask: u64,
    next_rowid: AtomicU64,
}

impl Table {
    /// Creates an empty table with the process-default shard count.
    pub fn new(name: &str, columns: Vec<ColumnMeta>) -> Self {
        Self::with_shard_count(name, columns, default_shard_count())
    }

    /// Creates an empty table with an explicit shard count (rounded up
    /// to a power of two; tests use this to exercise small counts).
    pub fn with_shard_count(name: &str, columns: Vec<ColumnMeta>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let col_index = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.to_lowercase(), i))
            .collect();
        Table {
            name: name.to_string(),
            columns,
            col_index,
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            shard_mask: (n - 1) as u64,
            next_rowid: AtomicU64::new(1),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column metadata in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Case-insensitive column lookup.
    pub fn column_position(&self, name: &str) -> Option<usize> {
        self.col_index.get(&name.to_lowercase()).copied()
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a rowid hashes to.
    pub fn shard_of(&self, rowid: u64) -> usize {
        (rowid & self.shard_mask) as usize
    }

    /// The rowid the next insert will receive.
    pub fn next_rowid(&self) -> u64 {
        self.next_rowid.load(Ordering::SeqCst)
    }

    /// Advances the rowid allocator to at least `next` (snapshot
    /// restore and WAL replay).
    pub fn set_next_rowid(&self, next: u64) {
        self.next_rowid.fetch_max(next, Ordering::SeqCst);
    }

    /// Allocates the next rowid (lock-free; the caller must insert the
    /// row under the owning shard's write lock).
    pub fn alloc_rowid(&self) -> u64 {
        self.next_rowid.fetch_add(1, Ordering::SeqCst)
    }

    /// Takes read guards on **all** shards (ascending) and returns a
    /// consistent read view of the whole table.
    pub fn read_view(&self) -> TableView<'_> {
        let guards = self.shards.iter().map(|s| s.read()).collect();
        TableView {
            table: self,
            slots: ShardSlots::Guards(guards),
        }
    }

    /// Takes write guards on exactly the shards owning `rowids`,
    /// acquired in ascending shard order (the global lock order).
    pub fn lock_shards(&self, rowids: impl IntoIterator<Item = u64>) -> ShardWriteSet<'_> {
        let mut idx: Vec<usize> = rowids.into_iter().map(|rid| self.shard_of(rid)).collect();
        idx.sort_unstable();
        idx.dedup();
        let guards = idx.iter().map(|&i| self.shards[i].write()).collect();
        ShardWriteSet {
            table: self,
            idx,
            guards,
        }
    }

    /// Takes write guards on every shard (ascending). Used by batch
    /// DML that scans while mutating, and by index DDL.
    pub fn lock_all_shards_write(&self) -> ShardWriteSet<'_> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let guards = self.shards.iter().map(|s| s.write()).collect();
        ShardWriteSet {
            table: self,
            idx,
            guards,
        }
    }

    /// Inserts a full-width row, returning its rowid. Convenience
    /// wrapper that allocates and takes the one shard lock internally.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the schema width (callers
    /// validate and pad first).
    pub fn insert(&self, row: Vec<Value>) -> u64 {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        let rowid = self.alloc_rowid();
        self.shards[self.shard_of(rowid)]
            .write()
            .insert_row(rowid, row);
        rowid
    }

    /// Inserts a full-width row under an explicit rowid (WAL replay and
    /// snapshot restore, where rowids must match the logged run
    /// exactly). Advances the rowid allocator past `rowid`.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the schema width.
    pub fn insert_with_rowid(&self, rowid: u64, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.shards[self.shard_of(rowid)]
            .write()
            .insert_row(rowid, row);
        self.next_rowid.fetch_max(rowid + 1, Ordering::SeqCst);
    }

    /// Deletes a row by id; returns whether it existed. Convenience
    /// wrapper that takes the one shard lock internally.
    pub fn delete(&self, rowid: u64) -> bool {
        self.shards[self.shard_of(rowid)].write().remove_row(rowid)
    }

    /// Replaces one cell, maintaining indexes. Convenience wrapper
    /// that takes the one shard lock internally.
    pub fn update_cell(&self, rowid: u64, col: usize, value: Value) {
        self.shards[self.shard_of(rowid)]
            .write()
            .set_cell(rowid, col, value);
    }

    /// Fetches one row (cloned out of its shard).
    pub fn row(&self, rowid: u64) -> Option<Vec<Value>> {
        self.shards[self.shard_of(rowid)]
            .read()
            .rows
            .get(&rowid)
            .cloned()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().rows.len()).sum()
    }

    /// Builds (or rebuilds) an index on a column, atomically across
    /// all shards (each shard carries its own index fragment).
    pub fn create_index(&self, column: &str) -> Result<(), EngineError> {
        let col = self
            .column_position(column)
            .ok_or_else(|| EngineError::ColumnNotFound(column.to_string()))?;
        let mut ws = self.lock_all_shards_write();
        for shard in ws.guards.iter_mut() {
            let mut index: BTreeMap<OrdValue, BTreeSet<u64>> = BTreeMap::new();
            for (&rowid, row) in &shard.rows {
                index
                    .entry(OrdValue(row[col].clone()))
                    .or_default()
                    .insert(rowid);
            }
            shard.indexes.insert(col, index);
        }
        Ok(())
    }

    /// Removes the index on a column, if any (the undo path for a
    /// `CREATE INDEX` whose WAL record never reached the log).
    pub fn drop_index(&self, column: &str) {
        if let Some(col) = self.column_position(column) {
            let mut ws = self.lock_all_shards_write();
            for shard in ws.guards.iter_mut() {
                shard.indexes.remove(&col);
            }
        }
    }

    /// True if the column has an index.
    pub fn has_index(&self, col: usize) -> bool {
        self.shards[0].read().indexes.contains_key(&col)
    }

    /// Column positions that carry a secondary index, sorted.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.shards[0].read().indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Rowids with `row[col] == value`, via the index.
    pub fn index_lookup(&self, col: usize, value: &Value) -> Option<Vec<u64>> {
        self.read_view().index_lookup(col, value)
    }

    /// Rowids with `low <= row[col] <= high` (either bound optional).
    pub fn index_range(
        &self,
        col: usize,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<u64>> {
        self.read_view().index_range(col, low, high)
    }

    /// Total storage footprint of all cells (§8.4.3).
    pub fn storage_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .rows
                    .values()
                    .map(|r| r.iter().map(Value::storage_bytes).sum::<usize>())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl Clone for Table {
    /// Clones the table under simultaneous read guards on every shard
    /// (ascending), so the copy is a statement-consistent snapshot even
    /// with concurrent shard writers (used by `BEGIN`).
    fn clone(&self) -> Self {
        let guards: Vec<RwLockReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read()).collect();
        let shards = guards
            .iter()
            .map(|g| RwLock::new((**g).clone()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Table {
            name: self.name.clone(),
            columns: self.columns.clone(),
            col_index: self.col_index.clone(),
            shards,
            shard_mask: self.shard_mask,
            next_rowid: AtomicU64::new(self.next_rowid.load(Ordering::SeqCst)),
        }
    }
}

/// How a [`TableView`] holds its shards: own read guards, or shard
/// references borrowed from a [`ShardWriteSet`] that already holds
/// every shard's write guard.
enum ShardSlots<'a> {
    Guards(Vec<RwLockReadGuard<'a, Shard>>),
    Borrowed(Vec<&'a Shard>),
}

/// A consistent read view over all shards of one table. Holds the
/// shard locks for its lifetime; iteration order and index results are
/// byte-identical to the pre-sharding single-map layout.
pub struct TableView<'a> {
    table: &'a Table,
    slots: ShardSlots<'a>,
}

impl<'a> TableView<'a> {
    fn shard(&self, i: usize) -> &Shard {
        match &self.slots {
            ShardSlots::Guards(g) => &g[i],
            ShardSlots::Borrowed(b) => b[i],
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        self.table.name()
    }

    /// Column metadata in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        self.table.columns()
    }

    /// Case-insensitive column lookup.
    pub fn column_position(&self, name: &str) -> Option<usize> {
        self.table.column_position(name)
    }

    /// Number of shards in the view.
    pub fn shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        (0..self.shard_count())
            .map(|i| self.shard(i).rows.len())
            .sum()
    }

    /// The rowid the next insert will receive.
    pub fn next_rowid(&self) -> u64 {
        self.table.next_rowid()
    }

    /// Fetches one row.
    pub fn row(&self, rowid: u64) -> Option<&Vec<Value>> {
        self.shard(self.table.shard_of(rowid)).rows.get(&rowid)
    }

    /// Iterates `(rowid, row)` across all shards in ascending rowid
    /// order (k-way merge over the per-shard B-tree maps).
    pub fn iter(&self) -> RowIter<'_> {
        RowIter {
            iters: (0..self.shard_count())
                .map(|i| self.shard(i).rows.iter().peekable())
                .collect(),
        }
    }

    /// Iterates `(rowid, row)` within one shard, ascending by rowid.
    pub fn shard_iter(&self, shard: usize) -> impl Iterator<Item = (u64, &Vec<Value>)> {
        self.shard(shard).rows.iter().map(|(id, r)| (*id, r))
    }

    /// True if the column has an index.
    pub fn has_index(&self, col: usize) -> bool {
        self.shard(0).indexes.contains_key(&col)
    }

    /// Column positions that carry a secondary index, sorted.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.shard(0).indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Rowids with `row[col] == value`, via the per-shard index
    /// fragments; ascending, matching the pre-sharding order.
    pub fn index_lookup(&self, col: usize, value: &Value) -> Option<Vec<u64>> {
        if !self.has_index(col) {
            return None;
        }
        let key = OrdValue(value.clone());
        let mut out = Vec::new();
        for i in 0..self.shard_count() {
            if let Some(set) = self.shard(i).indexes.get(&col).and_then(|ix| ix.get(&key)) {
                out.extend(set.iter().copied());
            }
        }
        out.sort_unstable();
        Some(out)
    }

    /// Rowids with `low <= row[col] <= high` (either bound optional),
    /// in `(value, rowid)` ascending order like the pre-sharding
    /// single B-tree.
    pub fn index_range(
        &self,
        col: usize,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<u64>> {
        use std::ops::Bound;
        if !self.has_index(col) {
            return None;
        }
        let lo = low.map_or(Bound::Unbounded, |v| Bound::Included(OrdValue(v.clone())));
        let hi = high.map_or(Bound::Unbounded, |v| Bound::Included(OrdValue(v.clone())));
        let mut pairs: Vec<(&OrdValue, u64)> = Vec::new();
        for i in 0..self.shard_count() {
            if let Some(ix) = self.shard(i).indexes.get(&col) {
                for (k, set) in ix.range((lo.clone(), hi.clone())) {
                    pairs.extend(set.iter().map(|&rid| (k, rid)));
                }
            }
        }
        pairs.sort_unstable();
        Some(pairs.into_iter().map(|(_, rid)| rid).collect())
    }

    /// Total storage footprint of all cells (§8.4.3).
    pub fn storage_bytes(&self) -> usize {
        (0..self.shard_count())
            .map(|i| {
                self.shard(i)
                    .rows
                    .values()
                    .map(|r| r.iter().map(Value::storage_bytes).sum::<usize>())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Ascending-rowid merge over per-shard row maps.
pub struct RowIter<'v> {
    iters: Vec<Peekable<btree_map::Iter<'v, u64, Vec<Value>>>>,
}

impl<'v> Iterator for RowIter<'v> {
    type Item = (u64, &'v Vec<Value>);

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, u64)> = None;
        for (i, it) in self.iters.iter_mut().enumerate() {
            if let Some((&rid, _)) = it.peek() {
                if best.is_none_or(|(_, b)| rid < b) {
                    best = Some((i, rid));
                }
            }
        }
        let (i, _) = best?;
        self.iters[i].next().map(|(id, r)| (*id, r))
    }
}

/// Write guards over a set of shards, acquired in ascending shard
/// order and held until drop (two-phase locking: a statement's
/// mutations and its WAL record are built under these guards).
pub struct ShardWriteSet<'a> {
    table: &'a Table,
    /// Sorted shard indices, parallel to `guards`.
    idx: Vec<usize>,
    guards: Vec<RwLockWriteGuard<'a, Shard>>,
}

impl ShardWriteSet<'_> {
    fn slot(&self, rowid: u64) -> usize {
        let shard = self.table.shard_of(rowid);
        self.idx
            .binary_search(&shard)
            .unwrap_or_else(|_| panic!("shard {shard} not locked for rowid {rowid}"))
    }

    /// Number of shards locked by this set.
    pub fn locked_shards(&self) -> usize {
        self.idx.len()
    }

    /// Inserts a full-width row under an explicit rowid.
    ///
    /// # Panics
    ///
    /// Panics if the rowid's shard is not in the locked set or the row
    /// width differs from the schema width.
    pub fn insert_row(&mut self, rowid: u64, row: Vec<Value>) {
        assert_eq!(row.len(), self.table.columns().len(), "row width mismatch");
        let slot = self.slot(rowid);
        self.guards[slot].insert_row(rowid, row);
    }

    /// Deletes a row; returns whether it existed.
    pub fn delete(&mut self, rowid: u64) -> bool {
        let slot = self.slot(rowid);
        self.guards[slot].remove_row(rowid)
    }

    /// Replaces one cell, maintaining this shard's index fragments.
    pub fn update_cell(&mut self, rowid: u64, col: usize, value: Value) {
        let slot = self.slot(rowid);
        self.guards[slot].set_cell(rowid, col, value);
    }

    /// Fetches one row from a locked shard.
    pub fn row(&self, rowid: u64) -> Option<&Vec<Value>> {
        self.guards[self.slot(rowid)].rows.get(&rowid)
    }

    /// A full-table view borrowed from these write guards. Only valid
    /// when every shard is locked (batch DML scans while mutating).
    ///
    /// # Panics
    ///
    /// Panics if the set does not cover all shards.
    pub fn as_view(&self) -> TableView<'_> {
        assert_eq!(
            self.idx.len(),
            self.table.shard_count(),
            "as_view requires all shards locked"
        );
        TableView {
            table: self.table,
            slots: ShardSlots::Borrowed(self.guards.iter().map(|g| &**g).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let t = Table::with_shard_count(
            "t",
            vec![
                ColumnMeta {
                    name: "id".into(),
                    ty: ColumnType::Int,
                },
                ColumnMeta {
                    name: "name".into(),
                    ty: ColumnType::Text,
                },
            ],
            4,
        );
        t.create_index("id").unwrap();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Str(format!("row{i}"))]);
        }
        t
    }

    #[test]
    fn insert_and_lookup() {
        let t = t();
        assert_eq!(t.row_count(), 10);
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(t.row(ids[0]).unwrap()[1], Value::Str("row5".into()));
    }

    #[test]
    fn range_scan() {
        let t = t();
        let ids = t
            .index_range(0, Some(&Value::Int(3)), Some(&Value::Int(6)))
            .unwrap();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn delete_maintains_index() {
        let t = t();
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        assert!(t.delete(ids[0]));
        assert!(t.index_lookup(0, &Value::Int(5)).unwrap().is_empty());
        assert_eq!(t.row_count(), 9);
    }

    #[test]
    fn update_maintains_index() {
        let t = t();
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        t.update_cell(ids[0], 0, Value::Int(100));
        assert!(t.index_lookup(0, &Value::Int(5)).unwrap().is_empty());
        assert_eq!(t.index_lookup(0, &Value::Int(100)).unwrap(), ids);
    }

    #[test]
    fn index_built_over_existing_rows() {
        let t = t();
        t.create_index("name").unwrap();
        let ids = t.index_lookup(1, &Value::Str("row7".into())).unwrap();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn case_insensitive_columns() {
        let t = t();
        assert_eq!(t.column_position("ID"), Some(0));
        assert_eq!(t.column_position("Name"), Some(1));
        assert_eq!(t.column_position("missing"), None);
    }

    #[test]
    fn view_iterates_in_ascending_rowid_order() {
        let t = t();
        let view = t.read_view();
        let ids: Vec<u64> = view.iter().map(|(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn every_rowid_lives_in_its_hash_shard() {
        let t = t();
        let view = t.read_view();
        let mut union = 0;
        for s in 0..view.shard_count() {
            for (rid, _) in view.shard_iter(s) {
                assert_eq!(t.shard_of(rid), s);
                union += 1;
            }
        }
        assert_eq!(union, view.row_count());
    }

    #[test]
    fn shard_write_set_routes_by_rowid() {
        let t = t();
        let all: Vec<u64> = t.read_view().iter().map(|(id, _)| id).collect();
        let mut ws = t.lock_shards([all[0], all[5]]);
        assert!(ws.locked_shards() <= 2);
        assert!(ws.row(all[0]).is_some());
        assert!(ws.delete(all[0]));
        assert!(ws.row(all[0]).is_none());
        ws.update_cell(all[5], 0, Value::Int(77));
        drop(ws);
        assert_eq!(t.row_count(), 9);
        assert_eq!(t.index_lookup(0, &Value::Int(77)).unwrap().len(), 1);
    }

    #[test]
    fn clone_is_deep_and_consistent() {
        let t = t();
        let c = t.clone();
        t.delete(1);
        assert_eq!(c.row_count(), 10);
        assert_eq!(c.next_rowid(), t.next_rowid());
        assert_eq!(c.indexed_columns(), vec![0]);
    }
}
