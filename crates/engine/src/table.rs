//! Table storage with secondary B-tree indexes.

use crate::error::EngineError;
use crate::value::{OrdValue, Value};
use cryptdb_sqlparser::ColumnType;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Column metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    pub ty: ColumnType,
}

/// An in-memory table: schema + rows keyed by rowid + secondary indexes.
#[derive(Clone)]
pub struct Table {
    name: String,
    columns: Vec<ColumnMeta>,
    col_index: HashMap<String, usize>,
    rows: BTreeMap<u64, Vec<Value>>,
    next_rowid: u64,
    /// column position → (value → rowids).
    indexes: HashMap<usize, BTreeMap<OrdValue, BTreeSet<u64>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: Vec<ColumnMeta>) -> Self {
        let col_index = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.to_lowercase(), i))
            .collect();
        Table {
            name: name.to_string(),
            columns,
            col_index,
            rows: BTreeMap::new(),
            next_rowid: 1,
            indexes: HashMap::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column metadata in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Case-insensitive column lookup.
    pub fn column_position(&self, name: &str) -> Option<usize> {
        self.col_index.get(&name.to_lowercase()).copied()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterates `(rowid, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Vec<Value>)> {
        self.rows.iter().map(|(id, r)| (*id, r))
    }

    /// Fetches one row.
    pub fn row(&self, rowid: u64) -> Option<&Vec<Value>> {
        self.rows.get(&rowid)
    }

    /// Inserts a full-width row, returning its rowid.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the schema width (callers
    /// validate and pad first).
    pub fn insert(&mut self, row: Vec<Value>) -> u64 {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        for (&col, index) in self.indexes.iter_mut() {
            index
                .entry(OrdValue(row[col].clone()))
                .or_default()
                .insert(rowid);
        }
        self.rows.insert(rowid, row);
        rowid
    }

    /// Inserts a full-width row under an explicit rowid (WAL replay and
    /// snapshot restore, where rowids must match the logged run exactly).
    /// Advances the rowid allocator past `rowid`.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the schema width.
    pub fn insert_with_rowid(&mut self, rowid: u64, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        for (&col, index) in self.indexes.iter_mut() {
            index
                .entry(OrdValue(row[col].clone()))
                .or_default()
                .insert(rowid);
        }
        self.rows.insert(rowid, row);
        self.next_rowid = self.next_rowid.max(rowid + 1);
    }

    /// The rowid the next insert will receive.
    pub fn next_rowid(&self) -> u64 {
        self.next_rowid
    }

    /// Forces the rowid allocator (snapshot restore).
    pub fn set_next_rowid(&mut self, next: u64) {
        self.next_rowid = self.next_rowid.max(next);
    }

    /// Column positions that carry a secondary index, sorted.
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Deletes a row by id; returns whether it existed.
    pub fn delete(&mut self, rowid: u64) -> bool {
        let Some(row) = self.rows.remove(&rowid) else {
            return false;
        };
        for (&col, index) in self.indexes.iter_mut() {
            if let Some(set) = index.get_mut(&OrdValue(row[col].clone())) {
                set.remove(&rowid);
                if set.is_empty() {
                    index.remove(&OrdValue(row[col].clone()));
                }
            }
        }
        true
    }

    /// Replaces one cell, maintaining indexes.
    pub fn update_cell(&mut self, rowid: u64, col: usize, value: Value) {
        let Some(row) = self.rows.get_mut(&rowid) else {
            return;
        };
        let old = std::mem::replace(&mut row[col], value.clone());
        if let Some(index) = self.indexes.get_mut(&col) {
            if let Some(set) = index.get_mut(&OrdValue(old.clone())) {
                set.remove(&rowid);
                if set.is_empty() {
                    index.remove(&OrdValue(old));
                }
            }
            index.entry(OrdValue(value)).or_default().insert(rowid);
        }
    }

    /// Builds (or rebuilds) an index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<(), EngineError> {
        let col = self
            .column_position(column)
            .ok_or_else(|| EngineError::ColumnNotFound(column.to_string()))?;
        let mut index: BTreeMap<OrdValue, BTreeSet<u64>> = BTreeMap::new();
        for (&rowid, row) in &self.rows {
            index
                .entry(OrdValue(row[col].clone()))
                .or_default()
                .insert(rowid);
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// True if the column has an index.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Removes the index on a column, if any (the undo path for a
    /// `CREATE INDEX` whose WAL record never reached the log).
    pub fn drop_index(&mut self, column: &str) {
        if let Some(col) = self.column_position(column) {
            self.indexes.remove(&col);
        }
    }

    /// Rowids with `row[col] == value`, via the index.
    pub fn index_lookup(&self, col: usize, value: &Value) -> Option<Vec<u64>> {
        let index = self.indexes.get(&col)?;
        Some(
            index
                .get(&OrdValue(value.clone()))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )
    }

    /// Rowids with `low <= row[col] <= high` (either bound optional).
    pub fn index_range(
        &self,
        col: usize,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<u64>> {
        use std::ops::Bound;
        let index = self.indexes.get(&col)?;
        let lo = low.map_or(Bound::Unbounded, |v| Bound::Included(OrdValue(v.clone())));
        let hi = high.map_or(Bound::Unbounded, |v| Bound::Included(OrdValue(v.clone())));
        let mut out = Vec::new();
        for (_, set) in index.range((lo, hi)) {
            out.extend(set.iter().copied());
        }
        Some(out)
    }

    /// Total storage footprint of all cells (§8.4.3).
    pub fn storage_bytes(&self) -> usize {
        self.rows
            .values()
            .map(|r| r.iter().map(Value::storage_bytes).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new(
            "t",
            vec![
                ColumnMeta {
                    name: "id".into(),
                    ty: ColumnType::Int,
                },
                ColumnMeta {
                    name: "name".into(),
                    ty: ColumnType::Text,
                },
            ],
        );
        t.create_index("id").unwrap();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Str(format!("row{i}"))]);
        }
        t
    }

    #[test]
    fn insert_and_lookup() {
        let t = t();
        assert_eq!(t.row_count(), 10);
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(t.row(ids[0]).unwrap()[1], Value::Str("row5".into()));
    }

    #[test]
    fn range_scan() {
        let t = t();
        let ids = t
            .index_range(0, Some(&Value::Int(3)), Some(&Value::Int(6)))
            .unwrap();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn delete_maintains_index() {
        let mut t = t();
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        assert!(t.delete(ids[0]));
        assert!(t.index_lookup(0, &Value::Int(5)).unwrap().is_empty());
        assert_eq!(t.row_count(), 9);
    }

    #[test]
    fn update_maintains_index() {
        let mut t = t();
        let ids = t.index_lookup(0, &Value::Int(5)).unwrap();
        t.update_cell(ids[0], 0, Value::Int(100));
        assert!(t.index_lookup(0, &Value::Int(5)).unwrap().is_empty());
        assert_eq!(t.index_lookup(0, &Value::Int(100)).unwrap(), ids);
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = t();
        t.create_index("name").unwrap();
        let ids = t.index_lookup(1, &Value::Str("row7".into())).unwrap();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn case_insensitive_columns() {
        let t = t();
        assert_eq!(t.column_position("ID"), Some(0));
        assert_eq!(t.column_position("Name"), Some(1));
        assert_eq!(t.column_position("missing"), None);
    }
}
