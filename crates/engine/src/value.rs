//! Runtime values.

use std::cmp::Ordering;

/// A single cell value.
///
/// Ciphertexts are stored as `Bytes`; their big-endian encodings make the
/// engine's ordinary lexicographic comparisons behave as numeric
/// comparisons, which is how OPE ciphertexts support range scans without
/// engine changes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    Null,
    Int(i64),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    /// True if this is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: nonzero integer. `NULL` and non-integers are falsy.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Int(v) if *v != 0)
    }

    /// The integer value, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bytes value, if any.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Storage footprint in bytes (for the §8.4.3 storage experiment).
    pub fn storage_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }

    /// Total ordering used by indexes and `ORDER BY`: `NULL` sorts first,
    /// then by type (Int, Str, Bytes), then by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Str(_) => 2,
                Value::Bytes(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL comparison: `None` when either side is `NULL` (unknown) or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

/// Wrapper giving [`Value`] the total order, for use as B-tree keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrdValue(pub Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn total_cmp_orders_types() {
        let mut vals = vec![
            Value::Bytes(vec![1]),
            Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(3),
                Value::Str("a".into()),
                Value::Bytes(vec![1]),
            ]
        );
    }

    #[test]
    fn bytes_compare_lexicographically() {
        // Big-endian encodings order numerically.
        let a = Value::Bytes(1000u64.to_be_bytes().to_vec());
        let b = Value::Bytes(2000u64.to_be_bytes().to_vec());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Str("x".into()).is_truthy());
    }
}
