//! User-defined function registry.
//!
//! The paper: "CryptDB also equips the server with CryptDB-specific
//! user-defined functions (UDFs) that enable the server to compute on
//! ciphertexts for certain operations" (§3). The engine knows nothing
//! about cryptography; the proxy registers closures here at setup time.

use crate::error::EngineError;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar UDF: row values in, value out.
pub type ScalarUdf = Arc<dyn Fn(&[Value]) -> Result<Value, EngineError> + Send + Sync>;

/// Folds one row's argument into an aggregate accumulator.
pub type AggregateStep = Arc<dyn Fn(Value, &Value) -> Result<Value, EngineError> + Send + Sync>;

/// An aggregate UDF: fold rows into an accumulator (e.g. `HOM_SUM`
/// multiplies Paillier ciphertexts).
#[derive(Clone)]
pub struct AggregateUdf {
    /// Initial accumulator value.
    pub init: Value,
    /// Folds one row's argument into the accumulator.
    pub step: AggregateStep,
}

/// Case-insensitive registry of scalar and aggregate UDFs.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    scalars: HashMap<String, ScalarUdf>,
    aggregates: HashMap<String, AggregateUdf>,
}

impl UdfRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scalar UDF (replacing any previous binding).
    pub fn register_scalar(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, EngineError> + Send + Sync + 'static,
    ) {
        self.scalars.insert(name.to_uppercase(), Arc::new(f));
    }

    /// Registers an aggregate UDF.
    pub fn register_aggregate(&mut self, name: &str, agg: AggregateUdf) {
        self.aggregates.insert(name.to_uppercase(), agg);
    }

    /// Looks up a scalar UDF.
    pub fn scalar(&self, name: &str) -> Option<&ScalarUdf> {
        self.scalars.get(&name.to_uppercase())
    }

    /// Looks up an aggregate UDF.
    pub fn aggregate(&self, name: &str) -> Option<&AggregateUdf> {
        self.aggregates.get(&name.to_uppercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_registration_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar("double", |args| {
            let v = args[0]
                .as_int()
                .ok_or(EngineError::Udf("int expected".into()))?;
            Ok(Value::Int(v * 2))
        });
        let f = reg.scalar("DOUBLE").expect("case-insensitive lookup");
        assert_eq!(f(&[Value::Int(21)]).unwrap(), Value::Int(42));
        assert!(reg.scalar("nope").is_none());
    }

    #[test]
    fn aggregate_fold() {
        let mut reg = UdfRegistry::new();
        reg.register_aggregate(
            "xor_all",
            AggregateUdf {
                init: Value::Int(0),
                step: Arc::new(|acc, v| {
                    Ok(Value::Int(acc.as_int().unwrap() ^ v.as_int().unwrap_or(0)))
                }),
            },
        );
        let agg = reg.aggregate("XOR_ALL").unwrap();
        let mut acc = agg.init.clone();
        for v in [1i64, 2, 4] {
            acc = (agg.step)(acc, &Value::Int(v)).unwrap();
        }
        assert_eq!(acc, Value::Int(7));
    }
}
