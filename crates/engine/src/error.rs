//! Engine errors.

use std::fmt;

/// Errors produced by the SQL engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    TableNotFound(String),
    TableExists(String),
    ColumnNotFound(String),
    AmbiguousColumn(String),
    ArityMismatch {
        expected: usize,
        found: usize,
    },
    TypeMismatch(String),
    UnknownFunction(String),
    Udf(String),
    Unsupported(String),
    NoActiveTransaction,
    /// Write-ahead-log failure (I/O, injected fault, or a record the
    /// replay codec cannot decode).
    Wal(String),
    /// The engine could not log this write (disk full or I/O error) and
    /// is in degraded read-only mode: the statement had no effect, reads
    /// keep serving, and writes are accepted again automatically once
    /// log appends succeed.
    Degraded(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TableNotFound(t) => write!(f, "table not found: {t}"),
            EngineError::TableExists(t) => write!(f, "table already exists: {t}"),
            EngineError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            EngineError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            EngineError::Udf(m) => write!(f, "UDF error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::NoActiveTransaction => write!(f, "no active transaction"),
            EngineError::Wal(m) => write!(f, "wal: {m}"),
            EngineError::Degraded(m) => write!(f, "degraded: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<cryptdb_wal::WalError> for EngineError {
    fn from(e: cryptdb_wal::WalError) -> Self {
        EngineError::Wal(e.to_string())
    }
}
