//! The engine facade: catalog, locking, statement dispatch, transactions.

use crate::error::EngineError;
use crate::exec::{self, Ctx, RowSchema, Source};
use crate::table::{ColumnMeta, Table};
use crate::udf::{AggregateUdf, UdfRegistry};
use crate::value::Value;
use cryptdb_sqlparser::{parse, Delete, Insert, Stmt, Update};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A result set with column names.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Rows affected by a write.
    Affected(usize),
    /// Statement executed with nothing to report (DDL, transactions).
    Ok,
}

impl QueryResult {
    /// The rows, if this is a result set.
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// First value of the first row (convenient for aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows().first().and_then(|r| r.first())
    }

    /// Canonical text form of a result set: one `|`-joined line per row,
    /// lines sorted, so two result sets compare equal iff they hold the
    /// same *multiset* of rows. Row order out of a concurrent run is
    /// schedule-dependent (insertion order differs run to run), so the
    /// end-to-end correctness harnesses compare canonical dumps of the
    /// concurrent run against a serial oracle replay.
    pub fn canonical_text(&self) -> String {
        let fmt_cell = |v: &Value| -> String {
            match v {
                Value::Null => "NULL".into(),
                Value::Int(i) => i.to_string(),
                // Escape the separator/line characters so the multiset
                // property survives strings containing '|' or newlines
                // (otherwise cell and row boundaries become ambiguous).
                Value::Str(s) => format!(
                    "'{}'",
                    s.replace('\\', "\\\\")
                        .replace('\n', "\\n")
                        .replace('|', "\\|")
                ),
                Value::Bytes(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
            }
        };
        let mut lines: Vec<String> = self
            .rows()
            .iter()
            .map(|row| row.iter().map(fmt_cell).collect::<Vec<_>>().join("|"))
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    }
}

/// The in-memory DBMS server.
///
/// Thread-safe: statements on different tables proceed in parallel, reads
/// on the same table share a lock, writes exclude each other — this is the
/// concurrency model whose contention shape Fig. 10 measures.
///
/// # Examples
///
/// ```
/// use cryptdb_engine::{Engine, Value};
///
/// let db = Engine::new();
/// db.execute_sql("CREATE TABLE t (id int, name text)").unwrap();
/// db.execute_sql("INSERT INTO t (id, name) VALUES (1, 'alice')").unwrap();
/// let r = db.execute_sql("SELECT name FROM t WHERE id = 1").unwrap();
/// assert_eq!(r.rows()[0][0], Value::Str("alice".into()));
/// ```
pub struct Engine {
    catalog: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    udfs: RwLock<UdfRegistry>,
    snapshot: Mutex<Option<HashMap<String, Table>>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            catalog: RwLock::new(HashMap::new()),
            udfs: RwLock::new(UdfRegistry::new()),
            snapshot: Mutex::new(None),
        }
    }

    /// Registers a scalar UDF.
    pub fn register_scalar_udf(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, EngineError> + Send + Sync + 'static,
    ) {
        self.udfs.write().register_scalar(name, f);
    }

    /// Registers an aggregate UDF.
    pub fn register_aggregate_udf(&self, name: &str, agg: AggregateUdf) {
        self.udfs.write().register_aggregate(name, agg);
    }

    /// Parses and executes a string of statements, returning the last result.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmts = parse(sql).map_err(|e| EngineError::Unsupported(e.to_string()))?;
        let mut last = QueryResult::Ok;
        for stmt in &stmts {
            last = self.execute(stmt)?;
        }
        Ok(last)
    }

    fn table_handle(&self, name: &str) -> Result<Arc<RwLock<Table>>, EngineError> {
        self.catalog
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    /// Runs `f` with a read lock on the named table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R, EngineError> {
        let handle = self.table_handle(name)?;
        let guard = handle.read();
        Ok(f(&guard))
    }

    /// All table names (lowercase), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total storage across tables (§8.4.3).
    pub fn storage_bytes(&self) -> usize {
        let catalog = self.catalog.read();
        catalog.values().map(|t| t.read().storage_bytes()).sum()
    }

    /// Executes one parsed statement.
    pub fn execute(&self, stmt: &Stmt) -> Result<QueryResult, EngineError> {
        match stmt {
            Stmt::CreateTable(ct) => {
                let key = ct.name.to_lowercase();
                let mut catalog = self.catalog.write();
                if catalog.contains_key(&key) {
                    return Err(EngineError::TableExists(ct.name.clone()));
                }
                let columns = ct
                    .columns
                    .iter()
                    .map(|c| ColumnMeta {
                        name: c.name.clone(),
                        ty: c.ty,
                    })
                    .collect();
                catalog.insert(key, Arc::new(RwLock::new(Table::new(&ct.name, columns))));
                Ok(QueryResult::Ok)
            }
            Stmt::CreateIndex { table, column } => {
                let handle = self.table_handle(table)?;
                handle.write().create_index(column)?;
                Ok(QueryResult::Ok)
            }
            Stmt::DropTable { name } => {
                let removed = self.catalog.write().remove(&name.to_lowercase());
                if removed.is_none() {
                    return Err(EngineError::TableNotFound(name.clone()));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::Insert(ins) => self.insert(ins),
            Stmt::Select(sel) => self.select(sel),
            Stmt::Update(upd) => self.update(upd),
            Stmt::Delete(del) => self.delete(del),
            Stmt::Begin => {
                let catalog = self.catalog.read();
                let snap = catalog
                    .iter()
                    .map(|(k, v)| (k.clone(), v.read().clone()))
                    .collect();
                *self.snapshot.lock() = Some(snap);
                Ok(QueryResult::Ok)
            }
            Stmt::Commit => {
                *self.snapshot.lock() = None;
                Ok(QueryResult::Ok)
            }
            Stmt::Rollback => {
                let Some(snap) = self.snapshot.lock().take() else {
                    return Err(EngineError::NoActiveTransaction);
                };
                let mut catalog = self.catalog.write();
                catalog.clear();
                for (k, t) in snap {
                    catalog.insert(k, Arc::new(RwLock::new(t)));
                }
                Ok(QueryResult::Ok)
            }
            // Annotation statements are proxy-side; the DBMS accepts and
            // ignores them (the proxy never forwards them in practice).
            Stmt::PrincType { .. } => Ok(QueryResult::Ok),
        }
    }

    fn insert(&self, ins: &Insert) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&ins.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let empty_schema = RowSchema::default();
        let mut table = handle.write();
        let width = table.columns().len();
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..width).collect()
        } else {
            ins.columns
                .iter()
                .map(|c| {
                    table
                        .column_position(c)
                        .ok_or_else(|| EngineError::ColumnNotFound(c.clone()))
                })
                .collect::<Result<_, _>>()?
        };
        let mut count = 0;
        for row_exprs in &ins.rows {
            if row_exprs.len() != positions.len() {
                return Err(EngineError::ArityMismatch {
                    expected: positions.len(),
                    found: row_exprs.len(),
                });
            }
            let mut row = vec![Value::Null; width];
            for (pos, e) in positions.iter().zip(row_exprs) {
                row[*pos] = exec::eval(e, &empty_schema, &[], &ctx)?;
            }
            table.insert(row);
            count += 1;
        }
        Ok(QueryResult::Affected(count))
    }

    fn select(&self, sel: &cryptdb_sqlparser::Select) -> Result<QueryResult, EngineError> {
        // Collect table handles in FROM-then-JOIN order; lock in sorted
        // order to avoid deadlocks, then execute.
        let mut refs = sel.from.clone();
        let mut join_ons = Vec::new();
        for j in &sel.joins {
            refs.push(j.table.clone());
            join_ons.push(j.on.clone());
        }
        let mut handles = Vec::with_capacity(refs.len());
        for r in &refs {
            handles.push(self.table_handle(&r.name)?);
        }
        // Deduplicate by Arc identity for locking (self-joins share one
        // lock), then lock in address order.
        let mut unique: Vec<Arc<RwLock<Table>>> = Vec::new();
        for h in &handles {
            if !unique.iter().any(|u| Arc::ptr_eq(u, h)) {
                unique.push(h.clone());
            }
        }
        unique.sort_by_key(|h| Arc::as_ptr(h) as usize);
        let guards: Vec<_> = unique.iter().map(|h| h.read()).collect();
        let find_guard = |h: &Arc<RwLock<Table>>| {
            unique
                .iter()
                .position(|u| Arc::ptr_eq(u, h))
                .expect("handle present")
        };
        let sources: Vec<Source<'_>> = refs
            .iter()
            .zip(&handles)
            .map(|(r, h)| Source::new(&guards[find_guard(h)], r))
            .collect();
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let (columns, rows) = exec::run_select(&sources, &join_ons, sel, &ctx)?;
        Ok(QueryResult::Rows { columns, rows })
    }

    fn update(&self, upd: &Update) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&upd.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let mut table = handle.write();
        let schema = RowSchema::for_table(&table, Some(&upd.table));
        let sets: Vec<(usize, &cryptdb_sqlparser::Expr)> = upd
            .sets
            .iter()
            .map(|(c, e)| {
                table
                    .column_position(c)
                    .map(|p| (p, e))
                    .ok_or_else(|| EngineError::ColumnNotFound(c.clone()))
            })
            .collect::<Result<_, _>>()?;
        let rowids = self.matching_rowids(&table, &schema, upd.selection.as_ref(), &ctx)?;
        let mut count = 0;
        for rowid in rowids {
            let row = table.row(rowid).expect("rowid from scan").clone();
            let mut new_values = Vec::with_capacity(sets.len());
            for (pos, e) in &sets {
                new_values.push((*pos, exec::eval(e, &schema, &row, &ctx)?));
            }
            for (pos, v) in new_values {
                table.update_cell(rowid, pos, v);
            }
            count += 1;
        }
        Ok(QueryResult::Affected(count))
    }

    fn delete(&self, del: &Delete) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&del.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let mut table = handle.write();
        let schema = RowSchema::for_table(&table, Some(&del.table));
        let rowids = self.matching_rowids(&table, &schema, del.selection.as_ref(), &ctx)?;
        let mut count = 0;
        for rowid in rowids {
            if table.delete(rowid) {
                count += 1;
            }
        }
        Ok(QueryResult::Affected(count))
    }

    /// Rowids matching a predicate (used by UPDATE/DELETE), index-assisted.
    fn matching_rowids(
        &self,
        table: &Table,
        schema: &RowSchema,
        selection: Option<&cryptdb_sqlparser::Expr>,
        ctx: &Ctx<'_>,
    ) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        match selection {
            None => out.extend(table.iter().map(|(id, _)| id)),
            Some(sel) => {
                let filters = exec::split_and(sel);
                let candidates = exec::index_candidates_public(table, schema, &filters);
                match candidates {
                    Some(ids) => {
                        for id in ids {
                            if let Some(row) = table.row(id) {
                                if exec::eval(sel, schema, row, ctx)?.is_truthy() {
                                    out.push(id);
                                }
                            }
                        }
                    }
                    None => {
                        for (id, row) in table.iter() {
                            if exec::eval(sel, schema, row, ctx)?.is_truthy() {
                                out.push(id);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}
