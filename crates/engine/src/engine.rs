//! The engine facade: catalog, locking, statement dispatch, transactions.

use crate::error::EngineError;
use crate::exec::{self, Ctx, RowSchema, Source};
use crate::table::{ColumnMeta, Table, TableView};
use crate::udf::{AggregateUdf, UdfRegistry};
use crate::value::Value;
use crate::wal_store::{self, WalOp};
use cryptdb_sqlparser::{parse, Delete, Insert, Stmt, Update};
use cryptdb_wal::{RecoveryReport, Wal, WalConfig, WalError, WalStats};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How many records the statement-path auto-snapshot waits after a
/// failure before retrying (the background janitor retries regardless).
const SNAPSHOT_RETRY_BACKOFF: u64 = 8;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A result set with column names.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Rows affected by a write.
    Affected(usize),
    /// Statement executed with nothing to report (DDL, transactions).
    Ok,
}

impl QueryResult {
    /// The rows, if this is a result set.
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// First value of the first row (convenient for aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows().first().and_then(|r| r.first())
    }

    /// Canonical text form of a result set: one `|`-joined line per row,
    /// lines sorted, so two result sets compare equal iff they hold the
    /// same *multiset* of rows. Row order out of a concurrent run is
    /// schedule-dependent (insertion order differs run to run), so the
    /// end-to-end correctness harnesses compare canonical dumps of the
    /// concurrent run against a serial oracle replay.
    pub fn canonical_text(&self) -> String {
        let fmt_cell = |v: &Value| -> String {
            match v {
                Value::Null => "NULL".into(),
                Value::Int(i) => i.to_string(),
                // Escape the separator/line characters so the multiset
                // property survives strings containing '|' or newlines
                // (otherwise cell and row boundaries become ambiguous).
                Value::Str(s) => format!(
                    "'{}'",
                    s.replace('\\', "\\\\")
                        .replace('\n', "\\n")
                        .replace('|', "\\|")
                ),
                Value::Bytes(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
            }
        };
        let mut lines: Vec<String> = self
            .rows()
            .iter()
            .map(|row| row.iter().map(fmt_cell).collect::<Vec<_>>().join("|"))
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    }
}

/// The in-memory DBMS server.
///
/// Thread-safe: statements on different tables proceed in parallel, reads
/// on the same table share a lock, writes exclude each other — this is the
/// concurrency model whose contention shape Fig. 10 measures.
///
/// # Examples
///
/// ```
/// use cryptdb_engine::{Engine, Value};
///
/// let db = Engine::new();
/// db.execute_sql("CREATE TABLE t (id int, name text)").unwrap();
/// db.execute_sql("INSERT INTO t (id, name) VALUES (1, 'alice')").unwrap();
/// let r = db.execute_sql("SELECT name FROM t WHERE id = 1").unwrap();
/// assert_eq!(r.rows()[0][0], Value::Str("alice".into()));
/// ```
pub struct Engine {
    catalog: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    udfs: RwLock<UdfRegistry>,
    snapshot: Mutex<Option<HashMap<String, Table>>>,
    /// Durability state, when a WAL is attached. Lock order everywhere:
    /// catalog → table schema lock → shard locks (ascending) → `wal` —
    /// mutating statements append their record while still holding the
    /// shard locks that serialized them, so WAL order equals apply
    /// order.
    wal: Mutex<Option<WalState>>,
    /// Fast-path flag mirroring `wal.is_some()`, so the no-WAL
    /// configuration skips the `wal` mutex entirely on the DML hot path
    /// (otherwise every statement from every shard-parallel writer
    /// would ping-pong one mutex for nothing). Set on attach/recover,
    /// never cleared.
    wal_attached: AtomicBool,
    /// True while log appends are failing: the engine is read-only and
    /// the serving layer sheds writes. Cleared by the next append that
    /// succeeds — recovery is automatic, no restart required.
    degraded: AtomicBool,
    /// WAL append failures (clean and unsynced) since startup.
    wal_append_failures: AtomicU64,
    /// Times the engine *entered* degraded mode.
    degraded_entries: AtomicU64,
    /// Auto-snapshot attempts that failed (surfaced, never swallowed).
    snapshot_failures: AtomicU64,
    /// Snapshots successfully written (auto or background cadence).
    snapshots_taken: AtomicU64,
    /// Statement-path auto-snapshot backoff: skip until the WAL
    /// sequence passes this watermark.
    snapshot_retry_floor: AtomicU64,
}

/// Point-in-time durability counters, for server stats and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// The engine is currently shedding writes because log appends
    /// fail.
    pub degraded: bool,
    /// WAL append failures since startup.
    pub wal_append_failures: u64,
    /// Times the engine entered degraded mode.
    pub degraded_entries: u64,
    /// Failed snapshot attempts.
    pub snapshot_failures: u64,
    /// Snapshots successfully written.
    pub snapshots_taken: u64,
    /// Segment files in the live WAL chain.
    pub wal_segments: u64,
    /// Total on-disk bytes of the WAL chain.
    pub wal_disk_bytes: u64,
    /// Epoch of the most recent snapshot (0 = none).
    pub snapshot_epoch: u64,
    /// Last assigned WAL sequence number.
    pub last_seq: u64,
}

/// How a [`Engine::log_record`] failure relates to the on-disk log —
/// the caller's contract is "memory equals log", so the two classes
/// demand opposite reactions.
enum LogError {
    /// The record never reached the log and no sequence number was
    /// consumed: the caller must undo the in-memory effects.
    Clean(EngineError),
    /// The record is fully written (durable-maybe: the fsync failed):
    /// the caller must keep the in-memory effects and withhold the
    /// acknowledgement.
    Durable(EngineError),
}

impl LogError {
    fn into_err(self) -> EngineError {
        match self {
            LogError::Clean(e) | LogError::Durable(e) => e,
        }
    }
}

struct WalState {
    wal: Wal,
    snapshot_every: Option<u64>,
    /// Most recent proxy meta blob seen in any record, cached so
    /// snapshots embed it (last-meta-wins at replay).
    last_meta: Option<Vec<u8>>,
}

/// What [`Engine::recover`] reconstructed.
#[derive(Debug)]
pub struct EngineRecovery {
    /// Log-scan outcome (with `records_applied` adjusted to the count
    /// actually replayed after snapshot filtering).
    pub report: RecoveryReport,
    /// The latest proxy meta blob from the snapshot or log, if any.
    pub meta: Option<Vec<u8>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            catalog: RwLock::new(HashMap::new()),
            udfs: RwLock::new(UdfRegistry::new()),
            snapshot: Mutex::new(None),
            wal: Mutex::new(None),
            wal_attached: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            wal_append_failures: AtomicU64::new(0),
            degraded_entries: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
            snapshot_retry_floor: AtomicU64::new(0),
        }
    }

    /// Registers a scalar UDF.
    pub fn register_scalar_udf(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, EngineError> + Send + Sync + 'static,
    ) {
        self.udfs.write().register_scalar(name, f);
    }

    /// Registers an aggregate UDF.
    pub fn register_aggregate_udf(&self, name: &str, agg: AggregateUdf) {
        self.udfs.write().register_aggregate(name, agg);
    }

    /// Parses and executes a string of statements, returning the last result.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmts = parse(sql).map_err(|e| EngineError::Unsupported(e.to_string()))?;
        let mut last = QueryResult::Ok;
        for stmt in &stmts {
            last = self.execute(stmt)?;
        }
        Ok(last)
    }

    fn table_handle(&self, name: &str) -> Result<Arc<RwLock<Table>>, EngineError> {
        self.catalog
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    /// Runs `f` with a consistent read view of the named table (schema
    /// read lock + read guards on every shard).
    pub fn with_table<R>(
        &self,
        name: &str,
        f: impl FnOnce(&TableView<'_>) -> R,
    ) -> Result<R, EngineError> {
        let handle = self.table_handle(name)?;
        let guard = handle.read();
        let view = guard.read_view();
        Ok(f(&view))
    }

    /// All table names (lowercase), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total storage across tables (§8.4.3).
    pub fn storage_bytes(&self) -> usize {
        let catalog = self.catalog.read();
        catalog.values().map(|t| t.read().storage_bytes()).sum()
    }

    /// Executes one parsed statement.
    pub fn execute(&self, stmt: &Stmt) -> Result<QueryResult, EngineError> {
        self.execute_with_meta(stmt, None)
    }

    /// Executes one statement; if it mutates state, its WAL record also
    /// carries `meta` (an opaque proxy blob) so the two land atomically.
    pub fn execute_with_meta(
        &self,
        stmt: &Stmt,
        meta: Option<&[u8]>,
    ) -> Result<QueryResult, EngineError> {
        let result = self.exec_stmt(stmt, meta);
        self.maybe_autosnapshot();
        result
    }

    /// Executes a sequence of DDL statements (`CREATE TABLE`,
    /// `CREATE INDEX`, `DROP TABLE`) under one catalog lock and logs
    /// them as a *single* WAL record together with `meta` — the
    /// crash-atomic unit the proxy needs for table creation (encrypted
    /// schema entry + anonymized table + rid index stand or fall
    /// together).
    pub fn execute_batch_with_meta(
        &self,
        stmts: &[Stmt],
        meta: Option<&[u8]>,
    ) -> Result<QueryResult, EngineError> {
        let result = self.exec_ddl_batch(stmts, meta);
        self.maybe_autosnapshot();
        result
    }

    /// Executes a sequence of `UPDATE` statements against one table
    /// under a single table write lock and logs every cell rewrite plus
    /// `meta` as a *single* WAL record — the crash-atomic unit
    /// `seal_column` needs (each row's re-encrypted onion cells and the
    /// schema's level flip stand or fall together at recovery). An
    /// empty batch logs a meta-only record, so a zero-row seal still
    /// lands its schema flip.
    ///
    /// On a mid-batch evaluation failure the cell rewrites already
    /// applied are logged *without* `meta` (the caller reverts its
    /// schema change, so recovery must not see the flip either).
    pub fn execute_dml_batch_with_meta(
        &self,
        stmts: &[Update],
        meta: Option<&[u8]>,
    ) -> Result<QueryResult, EngineError> {
        let result = self.exec_update_batch(stmts, meta);
        self.maybe_autosnapshot();
        result
    }

    /// Appends a meta-only WAL record (proxy schema changes that touch
    /// no engine state, e.g. level-floor or principal-type updates).
    /// A no-op without an attached WAL.
    pub fn log_meta(&self, meta: &[u8]) -> Result<(), EngineError> {
        self.log_record(&[], Some(meta)).map_err(LogError::into_err)
    }

    fn exec_stmt(&self, stmt: &Stmt, meta: Option<&[u8]>) -> Result<QueryResult, EngineError> {
        match stmt {
            Stmt::CreateTable(ct) => {
                let key = ct.name.to_lowercase();
                let mut catalog = self.catalog.write();
                if catalog.contains_key(&key) {
                    return Err(EngineError::TableExists(ct.name.clone()));
                }
                let columns: Vec<ColumnMeta> = ct
                    .columns
                    .iter()
                    .map(|c| ColumnMeta {
                        name: c.name.clone(),
                        ty: c.ty,
                    })
                    .collect();
                catalog.insert(
                    key.clone(),
                    Arc::new(RwLock::new(Table::new(&ct.name, columns.clone()))),
                );
                if let Err(fail) = self.log_record(
                    &[WalOp::CreateTable {
                        name: ct.name.clone(),
                        columns,
                    }],
                    meta,
                ) {
                    return Err(self.fail_logged(fail, || {
                        catalog.remove(&key);
                    }));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::CreateIndex { table, column } => {
                let handle = self.table_handle(table)?;
                // Index DDL takes the schema lock exclusively: no DML
                // holds any shard lock of this table while the index
                // fragments are (re)built.
                let guard = handle.write();
                // create_index rebuilds an existing index in place, so
                // the undo must not drop an index that predates the
                // statement.
                let existed = guard
                    .column_position(column)
                    .is_some_and(|c| guard.has_index(c));
                guard.create_index(column)?;
                if let Err(fail) = self.log_record(
                    &[WalOp::CreateIndex {
                        table: table.clone(),
                        column: column.clone(),
                    }],
                    meta,
                ) {
                    return Err(self.fail_logged(fail, || {
                        if !existed {
                            guard.drop_index(column);
                        }
                    }));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::DropTable { name } => {
                let key = name.to_lowercase();
                let mut catalog = self.catalog.write();
                let Some(dropped) = catalog.remove(&key) else {
                    return Err(EngineError::TableNotFound(name.clone()));
                };
                if let Err(fail) = self.log_record(&[WalOp::DropTable { name: name.clone() }], meta)
                {
                    return Err(self.fail_logged(fail, || {
                        catalog.insert(key, dropped);
                    }));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::Insert(ins) => self.insert(ins, meta),
            Stmt::Select(sel) => self.select(sel),
            Stmt::Update(upd) => self.update(upd, meta),
            Stmt::Delete(del) => self.delete(del, meta),
            Stmt::Begin => {
                let catalog = self.catalog.read();
                let snap = catalog
                    .iter()
                    .map(|(k, v)| (k.clone(), v.read().clone()))
                    .collect();
                *self.snapshot.lock() = Some(snap);
                if let Err(fail) = self.log_record(&[WalOp::Begin], meta) {
                    return Err(self.fail_logged(fail, || {
                        *self.snapshot.lock() = None;
                    }));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::Commit => {
                // The catalog read serializes the marker against
                // snapshot_now (which holds the catalog write lock).
                let _catalog = self.catalog.read();
                let prev = self.snapshot.lock().take();
                if let Err(fail) = self.log_record(&[WalOp::Commit], meta) {
                    return Err(self.fail_logged(fail, || {
                        *self.snapshot.lock() = prev;
                    }));
                }
                Ok(QueryResult::Ok)
            }
            Stmt::Rollback => {
                let Some(snap) = self.snapshot.lock().take() else {
                    return Err(EngineError::NoActiveTransaction);
                };
                let mut catalog = self.catalog.write();
                if !self.has_wal() {
                    // `log_record` cannot fail without a WAL, so no undo
                    // copy is needed: move the snapshot tables into the
                    // catalog instead of deep-cloning every one.
                    *catalog = snap
                        .into_iter()
                        .map(|(k, t)| (k, Arc::new(RwLock::new(t))))
                        .collect();
                    return Ok(QueryResult::Ok);
                }
                let prev = std::mem::take(&mut *catalog);
                for (k, t) in &snap {
                    catalog.insert(k.clone(), Arc::new(RwLock::new(t.clone())));
                }
                if let Err(fail) = self.log_record(&[WalOp::Rollback], meta) {
                    return Err(self.fail_logged(fail, || {
                        *catalog = prev;
                        *self.snapshot.lock() = Some(snap);
                    }));
                }
                Ok(QueryResult::Ok)
            }
            // Annotation statements are proxy-side; the DBMS accepts and
            // ignores them (the proxy never forwards them in practice).
            Stmt::PrincType { .. } => {
                if let Some(m) = meta {
                    self.log_record(&[], Some(m)).map_err(LogError::into_err)?;
                }
                Ok(QueryResult::Ok)
            }
        }
    }

    fn exec_ddl_batch(
        &self,
        stmts: &[Stmt],
        meta: Option<&[u8]>,
    ) -> Result<QueryResult, EngineError> {
        /// Inverse of one applied DDL op, replayed in reverse when the
        /// batch's WAL record never reaches the log.
        enum DdlUndo {
            Created(String),
            Dropped(String, Arc<RwLock<Table>>),
            Indexed(String, String),
        }
        let mut catalog = self.catalog.write();
        let mut ops: Vec<WalOp> = Vec::with_capacity(stmts.len());
        let mut undos: Vec<DdlUndo> = Vec::with_capacity(stmts.len());
        let mut failure: Option<EngineError> = None;
        for stmt in stmts {
            match stmt {
                Stmt::CreateTable(ct) => {
                    let key = ct.name.to_lowercase();
                    if catalog.contains_key(&key) {
                        failure = Some(EngineError::TableExists(ct.name.clone()));
                        break;
                    }
                    let columns: Vec<ColumnMeta> = ct
                        .columns
                        .iter()
                        .map(|c| ColumnMeta {
                            name: c.name.clone(),
                            ty: c.ty,
                        })
                        .collect();
                    catalog.insert(
                        key.clone(),
                        Arc::new(RwLock::new(Table::new(&ct.name, columns.clone()))),
                    );
                    undos.push(DdlUndo::Created(key));
                    ops.push(WalOp::CreateTable {
                        name: ct.name.clone(),
                        columns,
                    });
                }
                Stmt::CreateIndex { table, column } => {
                    let key = table.to_lowercase();
                    let Some(handle) = catalog.get(&key) else {
                        failure = Some(EngineError::TableNotFound(table.clone()));
                        break;
                    };
                    let guard = handle.write();
                    let existed = guard
                        .column_position(column)
                        .is_some_and(|c| guard.has_index(c));
                    if let Err(e) = guard.create_index(column) {
                        failure = Some(e);
                        break;
                    }
                    drop(guard);
                    if !existed {
                        undos.push(DdlUndo::Indexed(key, column.clone()));
                    }
                    ops.push(WalOp::CreateIndex {
                        table: table.clone(),
                        column: column.clone(),
                    });
                }
                Stmt::DropTable { name } => {
                    let key = name.to_lowercase();
                    let Some(dropped) = catalog.remove(&key) else {
                        failure = Some(EngineError::TableNotFound(name.clone()));
                        break;
                    };
                    undos.push(DdlUndo::Dropped(key, dropped));
                    ops.push(WalOp::DropTable { name: name.clone() });
                }
                _ => {
                    failure = Some(EngineError::Unsupported(
                        "execute_batch_with_meta supports DDL statements only".into(),
                    ));
                    break;
                }
            }
        }
        // Log exactly the ops applied. On failure the batch's meta is
        // not valid (the caller reverts its schema change), so the
        // partial ops go out bare.
        let logged = if failure.is_none() {
            self.log_record(&ops, meta)
        } else {
            self.log_record(&ops, None)
        };
        if let Err(fail) = logged {
            return Err(self.fail_logged(fail, || {
                for undo in undos.into_iter().rev() {
                    match undo {
                        DdlUndo::Created(key) => {
                            catalog.remove(&key);
                        }
                        DdlUndo::Dropped(key, table) => {
                            catalog.insert(key, table);
                        }
                        DdlUndo::Indexed(key, column) => {
                            if let Some(h) = catalog.get(&key) {
                                h.write().drop_index(&column);
                            }
                        }
                    }
                }
            }));
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(QueryResult::Ok)
    }

    fn insert(&self, ins: &Insert, meta: Option<&[u8]>) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&ins.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let empty_schema = RowSchema::default();
        // Schema lock shared: concurrent inserters into the same table
        // proceed in parallel, serialized only on the shards they touch.
        let table = handle.read();
        let width = table.columns().len();
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..width).collect()
        } else {
            ins.columns
                .iter()
                .map(|c| {
                    table
                        .column_position(c)
                        .ok_or_else(|| EngineError::ColumnNotFound(c.clone()))
                })
                .collect::<Result<_, _>>()?
        };
        // Phase 1 (no shard locks): evaluate every VALUES row. A bad row
        // keeps the applied prefix, exactly as the pre-sharding path did.
        let mut staged: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
        let mut failure: Option<EngineError> = None;
        'rows: for row_exprs in &ins.rows {
            if row_exprs.len() != positions.len() {
                failure = Some(EngineError::ArityMismatch {
                    expected: positions.len(),
                    found: row_exprs.len(),
                });
                break;
            }
            let mut row = vec![Value::Null; width];
            for (pos, e) in positions.iter().zip(row_exprs) {
                match exec::eval(e, &empty_schema, &[], &ctx) {
                    Ok(v) => row[*pos] = v,
                    Err(e) => {
                        failure = Some(e);
                        break 'rows;
                    }
                }
            }
            staged.push(row);
        }
        // Phase 2: allocate rowids lock-free, write-lock exactly the
        // shards they hash to (ascending), apply, and log the composite
        // record while those shard locks are held so WAL order matches
        // apply order.
        let rowids: Vec<u64> = staged.iter().map(|_| table.alloc_rowid()).collect();
        let mut ws = table.lock_shards(rowids.iter().copied());
        let count = staged.len();
        let mut ops: Vec<WalOp> = Vec::with_capacity(count);
        for (&rowid, row) in rowids.iter().zip(staged) {
            ws.insert_row(rowid, row.clone());
            ops.push(WalOp::InsertRow {
                table: ins.table.clone(),
                rowid,
                row,
            });
        }
        if let Err(fail) = self.log_record(&ops, meta) {
            return Err(self.fail_logged(fail, || {
                // The applied rows come back out, through the still-held
                // shard guards. The rowid allocator is not rewound: the
                // log carries explicit rowids, so a gap is harmless, and
                // rewinding could collide with rowids a later statement
                // hands out.
                for &rowid in rowids.iter().rev() {
                    ws.delete(rowid);
                }
            }));
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(QueryResult::Affected(count))
    }

    fn select(&self, sel: &cryptdb_sqlparser::Select) -> Result<QueryResult, EngineError> {
        // Collect table handles in FROM-then-JOIN order; lock in sorted
        // order to avoid deadlocks, then execute.
        let mut refs = sel.from.clone();
        let mut join_ons = Vec::new();
        for j in &sel.joins {
            refs.push(j.table.clone());
            join_ons.push(j.on.clone());
        }
        let mut handles = Vec::with_capacity(refs.len());
        for r in &refs {
            handles.push(self.table_handle(&r.name)?);
        }
        // Deduplicate by Arc identity for locking (self-joins share one
        // lock), then lock in address order.
        let mut unique: Vec<Arc<RwLock<Table>>> = Vec::new();
        for h in &handles {
            if !unique.iter().any(|u| Arc::ptr_eq(u, h)) {
                unique.push(h.clone());
            }
        }
        unique.sort_by_key(|h| Arc::as_ptr(h) as usize);
        let guards: Vec<_> = unique.iter().map(|h| h.read()).collect();
        // One all-shard read view per unique table (self-joins share a
        // view), acquired in the same sorted table order so shard-lock
        // acquisition follows the global lock order.
        let views: Vec<TableView<'_>> = guards.iter().map(|g| g.read_view()).collect();
        let find_guard = |h: &Arc<RwLock<Table>>| {
            unique
                .iter()
                .position(|u| Arc::ptr_eq(u, h))
                .expect("handle present")
        };
        let sources: Vec<Source<'_>> = refs
            .iter()
            .zip(&handles)
            .map(|(r, h)| Source::new(&views[find_guard(h)], r))
            .collect();
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        let (columns, rows) = exec::run_select(&sources, &join_ons, sel, &ctx)?;
        Ok(QueryResult::Rows { columns, rows })
    }

    fn update(&self, upd: &Update, meta: Option<&[u8]>) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&upd.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        // Schema lock shared; row access goes through shard locks.
        let table = handle.read();
        let schema = RowSchema::for_table(&table, Some(&upd.table));
        let sets: Vec<(usize, &cryptdb_sqlparser::Expr)> = upd
            .sets
            .iter()
            .map(|(c, e)| {
                table
                    .column_position(c)
                    .map(|p| (p, e))
                    .ok_or_else(|| EngineError::ColumnNotFound(c.clone()))
            })
            .collect::<Result<_, _>>()?;
        // Phase 1: find candidates under an all-shard read view, then
        // release it. Phase 2 write-locks only the touched shards and
        // re-checks each candidate (it may have been deleted or changed
        // by a writer that slipped between the phases). Rows in
        // *untouched* shards that start matching in that window are
        // missed — acceptable: the commuting workloads the oracle tests
        // replay never produce such rows, and a serial schedule explains
        // the result either way.
        let rowids = {
            let view = table.read_view();
            self.matching_rowids(&view, &schema, upd.selection.as_ref(), &ctx)?
        };
        let mut ws = table.lock_shards(rowids.iter().copied());
        let mut count = 0;
        let mut ops: Vec<WalOp> = Vec::new();
        let mut undo_cells: Vec<(u64, usize, Value)> = Vec::new();
        let mut failure: Option<EngineError> = None;
        'rows: for rowid in rowids {
            let Some(row) = ws.row(rowid).cloned() else {
                continue;
            };
            if let Some(sel) = upd.selection.as_ref() {
                match exec::eval(sel, &schema, &row, &ctx) {
                    Ok(v) if v.is_truthy() => {}
                    Ok(_) => continue,
                    Err(e) => {
                        failure = Some(e);
                        break 'rows;
                    }
                }
            }
            let mut new_values = Vec::with_capacity(sets.len());
            for (pos, e) in &sets {
                match exec::eval(e, &schema, &row, &ctx) {
                    Ok(v) => new_values.push((*pos, v)),
                    Err(e) => {
                        failure = Some(e);
                        break 'rows;
                    }
                }
            }
            for (pos, v) in new_values {
                undo_cells.push((rowid, pos, row[pos].clone()));
                ops.push(WalOp::UpdateCell {
                    table: upd.table.clone(),
                    rowid,
                    col: pos as u32,
                    value: v.clone(),
                });
                ws.update_cell(rowid, pos, v);
            }
            count += 1;
        }
        // One composite record for exactly the cells applied, logged
        // while the shard write guards are still held.
        if let Err(fail) = self.log_record(&ops, meta) {
            return Err(self.fail_logged(fail, || {
                for (rowid, pos, old) in undo_cells.into_iter().rev() {
                    ws.update_cell(rowid, pos, old);
                }
            }));
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(QueryResult::Affected(count))
    }

    fn exec_update_batch(
        &self,
        stmts: &[Update],
        meta: Option<&[u8]>,
    ) -> Result<QueryResult, EngineError> {
        let Some(first) = stmts.first() else {
            self.log_record(&[], meta).map_err(LogError::into_err)?;
            return Ok(QueryResult::Affected(0));
        };
        if stmts
            .iter()
            .any(|u| !u.table.eq_ignore_ascii_case(&first.table))
        {
            return Err(EngineError::Unsupported(
                "execute_dml_batch_with_meta requires a single target table".into(),
            ));
        }
        let handle = self.table_handle(&first.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        // The batch scans while it mutates, so it write-locks every
        // shard (ascending) for its whole duration — the sharded
        // equivalent of the old single table write lock.
        let table = handle.read();
        let schema = RowSchema::for_table(&table, Some(&first.table));
        let mut ws = table.lock_all_shards_write();
        let mut count = 0;
        let mut ops: Vec<WalOp> = Vec::new();
        let mut undo_cells: Vec<(u64, usize, Value)> = Vec::new();
        let mut failure: Option<EngineError> = None;
        'stmts: for upd in stmts {
            let sets: Vec<(usize, &cryptdb_sqlparser::Expr)> = match upd
                .sets
                .iter()
                .map(|(c, e)| {
                    table
                        .column_position(c)
                        .map(|p| (p, e))
                        .ok_or_else(|| EngineError::ColumnNotFound(c.clone()))
                })
                .collect::<Result<_, _>>()
            {
                Ok(s) => s,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            // The scan borrows a view from the held write guards; no
            // re-check is needed because the guards never drop.
            let rowids = {
                let view = ws.as_view();
                match self.matching_rowids(&view, &schema, upd.selection.as_ref(), &ctx) {
                    Ok(r) => r,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            };
            for rowid in rowids {
                let row = ws.row(rowid).expect("rowid from scan").clone();
                let mut new_values = Vec::with_capacity(sets.len());
                for (pos, e) in &sets {
                    match exec::eval(e, &schema, &row, &ctx) {
                        Ok(v) => new_values.push((*pos, v)),
                        Err(e) => {
                            failure = Some(e);
                            break 'stmts;
                        }
                    }
                }
                for (pos, v) in new_values {
                    undo_cells.push((rowid, pos, row[pos].clone()));
                    ops.push(WalOp::UpdateCell {
                        table: upd.table.clone(),
                        rowid,
                        col: pos as u32,
                        value: v.clone(),
                    });
                    ws.update_cell(rowid, pos, v);
                }
                count += 1;
            }
        }
        // One record for the whole batch; on failure the meta is
        // withheld so recovery cannot observe the caller's schema flip.
        let logged = if failure.is_none() {
            self.log_record(&ops, meta)
        } else {
            self.log_record(&ops, None)
        };
        if let Err(fail) = logged {
            return Err(self.fail_logged(fail, || {
                for (rowid, pos, old) in undo_cells.into_iter().rev() {
                    ws.update_cell(rowid, pos, old);
                }
            }));
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(QueryResult::Affected(count))
    }

    fn delete(&self, del: &Delete, meta: Option<&[u8]>) -> Result<QueryResult, EngineError> {
        let handle = self.table_handle(&del.table)?;
        let udfs = self.udfs.read();
        let ctx = Ctx { udfs: &udfs };
        // Same two-phase shape as `update`: scan under an all-shard read
        // view, then write-lock only the touched shards and re-check.
        let table = handle.read();
        let schema = RowSchema::for_table(&table, Some(&del.table));
        let rowids = {
            let view = table.read_view();
            self.matching_rowids(&view, &schema, del.selection.as_ref(), &ctx)?
        };
        let mut ws = table.lock_shards(rowids.iter().copied());
        let mut count = 0;
        let mut ops: Vec<WalOp> = Vec::new();
        let mut deleted: Vec<(u64, Vec<Value>)> = Vec::new();
        let mut failure: Option<EngineError> = None;
        for rowid in rowids {
            let Some(row) = ws.row(rowid).cloned() else {
                continue;
            };
            if let Some(sel) = del.selection.as_ref() {
                match exec::eval(sel, &schema, &row, &ctx) {
                    Ok(v) if v.is_truthy() => {}
                    Ok(_) => continue,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            ws.delete(rowid);
            deleted.push((rowid, row));
            ops.push(WalOp::DeleteRow {
                table: del.table.clone(),
                rowid,
            });
            count += 1;
        }
        if let Err(fail) = self.log_record(&ops, meta) {
            return Err(self.fail_logged(fail, || {
                for (rowid, row) in deleted.into_iter().rev() {
                    ws.insert_row(rowid, row);
                }
            }));
        }
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(QueryResult::Affected(count))
    }

    // ---- durability ----

    /// Appends one record (ops + optional meta) to the attached WAL.
    /// No-op without a WAL; must be called while still holding the lock
    /// that serialized the ops. A failure flips the engine into
    /// degraded read-only mode; the next success flips it back.
    fn log_record(&self, ops: &[WalOp], meta: Option<&[u8]>) -> Result<(), LogError> {
        if ops.is_empty() && meta.is_none() {
            return Ok(());
        }
        // No WAL attached: skip the mutex so shard-parallel writers
        // don't serialize on it for nothing.
        if !self.wal_attached.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut guard = self.wal.lock();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        let payload = wal_store::encode_record(ops, meta);
        match state.wal.append(&payload) {
            Ok(_) => {
                if let Some(m) = meta {
                    state.last_meta = Some(m.to_vec());
                }
                // An append going through means the disk works again;
                // leave degraded mode without any operator action.
                self.degraded.store(false, Ordering::Relaxed);
                Ok(())
            }
            Err(e @ WalError::Unsynced { .. }) => {
                // The record is on disk (maybe durable): keep memory ==
                // log and withhold only the acknowledgement, exactly as
                // the single-file WAL's sync-kill path always behaved.
                self.note_append_failure();
                if let Some(m) = meta {
                    state.last_meta = Some(m.to_vec());
                }
                Err(LogError::Durable(EngineError::Degraded(e.to_string())))
            }
            Err(e) => {
                // Nothing reached the log: the caller undoes the
                // in-memory effects so the statement had no effect at
                // all.
                self.note_append_failure();
                Err(LogError::Clean(EngineError::Degraded(e.to_string())))
            }
        }
    }

    fn note_append_failure(&self) {
        self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.degraded_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Converts a failed [`Engine::log_record`] into the error to
    /// surface, running `undo` only when the record never reached the
    /// log — so memory equals log on both failure classes.
    fn fail_logged(&self, fail: LogError, undo: impl FnOnce()) -> EngineError {
        if matches!(fail, LogError::Clean(_)) {
            undo();
        }
        fail.into_err()
    }

    /// True while the engine is shedding writes because WAL appends
    /// fail. Reads are unaffected.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Durability counters plus the attached WAL's segment stats (all
    /// zero without a WAL).
    pub fn durability_stats(&self) -> DurabilityStats {
        let wal_stats = self
            .wal
            .lock()
            .as_ref()
            .map(|s| s.wal.stats())
            .unwrap_or_default();
        DurabilityStats {
            degraded: self.degraded.load(Ordering::Relaxed),
            wal_append_failures: self.wal_append_failures.load(Ordering::Relaxed),
            degraded_entries: self.degraded_entries.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
            wal_segments: wal_stats.segments,
            wal_disk_bytes: wal_stats.disk_bytes,
            snapshot_epoch: wal_stats.snapshot_epoch,
            last_seq: wal_stats.last_seq,
        }
    }

    /// Raw counters of the attached WAL (all zero without one): segment
    /// chain size, rotation and retention-deletion totals.
    pub fn wal_stats(&self) -> WalStats {
        self.wal
            .lock()
            .as_ref()
            .map(|s| s.wal.stats())
            .unwrap_or_default()
    }

    /// Attaches a WAL to a fresh engine. The directory must not hold an
    /// existing log or snapshot (use [`Engine::recover`] for those);
    /// everything executed from here on is logged.
    pub fn attach_wal(&self, dir: &Path, cfg: WalConfig) -> Result<(), EngineError> {
        let snapshot_every = cfg.snapshot_every;
        let (wal, recovered) = Wal::open(dir, &cfg)?;
        if !recovered.records.is_empty() || recovered.snapshot.is_some() {
            return Err(EngineError::Wal(
                "directory holds an existing log; use Engine::recover".into(),
            ));
        }
        let mut guard = self.wal.lock();
        if guard.is_some() {
            return Err(EngineError::Wal("a WAL is already attached".into()));
        }
        *guard = Some(WalState {
            wal,
            snapshot_every,
            last_meta: None,
        });
        self.wal_attached.store(true, Ordering::Release);
        Ok(())
    }

    /// Rebuilds an engine from `dir`: restores the last complete
    /// snapshot (if valid), replays the log suffix past its epoch, and
    /// leaves the WAL attached so the engine resumes appending. Works on
    /// a fresh directory too (empty recovery). A transaction left open
    /// at the crash point is discarded — no session survives a restart
    /// to finish it.
    pub fn recover(dir: &Path, cfg: WalConfig) -> Result<(Engine, EngineRecovery), EngineError> {
        let snapshot_every = cfg.snapshot_every;
        let (wal, recovered) = Wal::open(dir, &cfg)?;
        let engine = Engine::new();
        let mut report = recovered.report;
        let mut last_meta: Option<Vec<u8>> = None;
        let mut epoch = 0u64;
        if let Some(snap) = &recovered.snapshot {
            let (tables, meta) = wal_store::decode_snapshot(&snap.payload)?;
            let mut catalog = engine.catalog.write();
            for t in tables {
                catalog.insert(t.name().to_lowercase(), Arc::new(RwLock::new(t)));
            }
            last_meta = meta;
            epoch = snap.epoch;
        }
        let mut applied = 0u64;
        for (seq, payload) in &recovered.records {
            if *seq <= epoch {
                continue;
            }
            let (ops, meta) = wal_store::decode_record(payload)?;
            for op in &ops {
                engine.apply_op(op)?;
            }
            if let Some(m) = meta {
                last_meta = Some(m);
            }
            applied += 1;
        }
        *engine.snapshot.lock() = None;
        report.records_applied = applied;
        *engine.wal.lock() = Some(WalState {
            wal,
            snapshot_every,
            last_meta: last_meta.clone(),
        });
        engine.wal_attached.store(true, Ordering::Release);
        Ok((
            engine,
            EngineRecovery {
                report,
                meta: last_meta,
            },
        ))
    }

    /// Sequence number of the last record appended to the WAL (0 with no
    /// WAL attached or nothing logged yet). The kill-and-recover harness
    /// samples this after each acknowledged statement to compute the
    /// oracle prefix.
    pub fn wal_seq(&self) -> u64 {
        self.wal.lock().as_ref().map(|s| s.wal.seq()).unwrap_or(0)
    }

    /// Current WAL file length in bytes (kill-point selection).
    pub fn wal_len(&self) -> u64 {
        self.wal
            .lock()
            .as_ref()
            .map(|s| s.wal.log_len())
            .unwrap_or(0)
    }

    /// True if a WAL is attached.
    pub fn has_wal(&self) -> bool {
        self.wal.lock().is_some()
    }

    /// Forces an fsync of the WAL (group-commit barrier for the
    /// `EveryN`/`Never` policies).
    pub fn wal_sync(&self) -> Result<(), EngineError> {
        if let Some(state) = self.wal.lock().as_ref() {
            state.wal.sync()?;
        }
        Ok(())
    }

    /// Writes a snapshot of the full engine state (ciphertext only) at
    /// the current WAL watermark. Returns the epoch, or `None` when no
    /// WAL is attached or a transaction is open (a mid-transaction
    /// snapshot could strand a later `ROLLBACK` at replay; the next
    /// attempt after `COMMIT`/`ROLLBACK` succeeds). Once the snapshot
    /// is durable, WAL segments wholly below its epoch are deleted per
    /// the configured retention, bounding the on-disk log and the
    /// recovery replay.
    pub fn snapshot_now(&self) -> Result<Option<u64>, EngineError> {
        // The catalog write lock stops new statements from acquiring
        // table handles; taking every table's schema write lock then
        // waits out statements already past the catalog (a writer holds
        // its table's schema lock shared, plus shard write locks, while
        // mutating + logging — the schema write lock excludes both).
        let catalog = self.catalog.write();
        if self.snapshot.lock().is_some() {
            return Ok(None);
        }
        let mut handles: Vec<Arc<RwLock<Table>>> = catalog.values().cloned().collect();
        handles.sort_by_key(|h| Arc::as_ptr(h) as usize);
        let guards: Vec<_> = handles.iter().map(|h| h.write()).collect();
        let find = |h: &Arc<RwLock<Table>>| {
            handles
                .iter()
                .position(|u| Arc::ptr_eq(u, h))
                .expect("handle present")
        };
        let mut wal_guard = self.wal.lock();
        let Some(state) = wal_guard.as_mut() else {
            return Ok(None);
        };
        let named: Vec<(&str, &Table)> = catalog
            .iter()
            .map(|(k, h)| (k.as_str(), &*guards[find(h)]))
            .collect();
        let payload = wal_store::encode_snapshot(&named, state.last_meta.as_deref());
        let epoch = state.wal.write_snapshot(&payload)?;
        Ok(Some(epoch))
    }

    /// True when the configured `snapshot_every` interval has elapsed.
    fn snapshot_due(&self) -> bool {
        let guard = self.wal.lock();
        match guard.as_ref() {
            Some(s) => match s.snapshot_every {
                Some(n) if n > 0 => s.wal.records_since_snapshot() >= n,
                _ => false,
            },
            None => false,
        }
    }

    /// Runs a snapshot when the configured `snapshot_every` interval has
    /// elapsed. Called after every statement, outside its locks. A
    /// failure is counted, logged and backed off (retrying on every
    /// following statement would hammer a sick disk); the background
    /// cadence ([`Engine::autosnapshot_tick`]) retries regardless, so a
    /// transient failure never silently stops snapshotting.
    fn maybe_autosnapshot(&self) {
        if !self.snapshot_due() {
            return;
        }
        let seq = self.wal_seq();
        if seq < self.snapshot_retry_floor.load(Ordering::Relaxed) {
            return;
        }
        self.run_due_snapshot(seq);
    }

    /// One tick of the background snapshot cadence: runs a snapshot if
    /// the configured interval is due, ignoring the statement-path
    /// retry backoff (this *is* the retry path). Returns whether a
    /// snapshot was attempted. Failures are counted in
    /// [`DurabilityStats::snapshot_failures`], never swallowed.
    pub fn autosnapshot_tick(&self) -> bool {
        if !self.snapshot_due() {
            return false;
        }
        self.run_due_snapshot(self.wal_seq());
        true
    }

    fn run_due_snapshot(&self, seq: u64) {
        match self.snapshot_now() {
            Ok(Some(_)) => {
                self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
            }
            // A transaction is open: not a failure, the next attempt
            // after COMMIT/ROLLBACK takes it.
            Ok(None) => {}
            Err(e) => {
                let n = self.snapshot_failures.fetch_add(1, Ordering::Relaxed) + 1;
                self.snapshot_retry_floor
                    .store(seq + SNAPSHOT_RETRY_BACKOFF, Ordering::Relaxed);
                eprintln!("cryptdb-engine: auto-snapshot failed ({n} failures total): {e}");
            }
        }
    }

    /// Applies one replayed op. Physical and rowid-keyed, so replay
    /// reproduces the original run exactly; updates/deletes on missing
    /// rowids are no-ops (mirroring the live mutation paths).
    fn apply_op(&self, op: &WalOp) -> Result<(), EngineError> {
        match op {
            WalOp::CreateTable { name, columns } => {
                let key = name.to_lowercase();
                let mut catalog = self.catalog.write();
                if catalog.contains_key(&key) {
                    return Err(EngineError::Wal(format!(
                        "replay: table {name} already exists"
                    )));
                }
                catalog.insert(
                    key,
                    Arc::new(RwLock::new(Table::new(name, columns.clone()))),
                );
            }
            WalOp::CreateIndex { table, column } => {
                self.table_handle(table)?.write().create_index(column)?;
            }
            WalOp::DropTable { name } => {
                if self.catalog.write().remove(&name.to_lowercase()).is_none() {
                    return Err(EngineError::Wal(format!("replay: no table {name} to drop")));
                }
            }
            WalOp::InsertRow { table, rowid, row } => {
                self.table_handle(table)?
                    .write()
                    .insert_with_rowid(*rowid, row.clone());
            }
            WalOp::UpdateCell {
                table,
                rowid,
                col,
                value,
            } => {
                self.table_handle(table)?
                    .write()
                    .update_cell(*rowid, *col as usize, value.clone());
            }
            WalOp::DeleteRow { table, rowid } => {
                self.table_handle(table)?.write().delete(*rowid);
            }
            WalOp::Begin => {
                let catalog = self.catalog.read();
                let snap = catalog
                    .iter()
                    .map(|(k, v)| (k.clone(), v.read().clone()))
                    .collect();
                *self.snapshot.lock() = Some(snap);
            }
            WalOp::Commit => {
                *self.snapshot.lock() = None;
            }
            WalOp::Rollback => {
                let Some(snap) = self.snapshot.lock().take() else {
                    return Err(EngineError::Wal("replay: rollback without begin".into()));
                };
                let mut catalog = self.catalog.write();
                catalog.clear();
                for (k, t) in snap {
                    catalog.insert(k, Arc::new(RwLock::new(t)));
                }
            }
        }
        Ok(())
    }

    /// Rowids matching a predicate (used by UPDATE/DELETE), evaluated
    /// over a consistent all-shard view, index-assisted.
    fn matching_rowids(
        &self,
        view: &TableView<'_>,
        schema: &RowSchema,
        selection: Option<&cryptdb_sqlparser::Expr>,
        ctx: &Ctx<'_>,
    ) -> Result<Vec<u64>, EngineError> {
        let mut out = Vec::new();
        match selection {
            None => out.extend(view.iter().map(|(id, _)| id)),
            Some(sel) => {
                let filters = exec::split_and(sel);
                let candidates = exec::index_candidates_public(view, schema, &filters);
                match candidates {
                    Some(ids) => {
                        for id in ids {
                            if let Some(row) = view.row(id) {
                                if exec::eval(sel, schema, row, ctx)?.is_truthy() {
                                    out.push(id);
                                }
                            }
                        }
                    }
                    None => {
                        for (id, row) in view.iter() {
                            if exec::eval(sel, schema, row, ctx)?.is_truthy() {
                                out.push(id);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}
