//! Query execution: expression evaluation, planning, joins, aggregation.

use crate::error::EngineError;
use crate::table::{ColumnMeta, Table, TableView};
use crate::udf::UdfRegistry;
use crate::value::Value;
use cryptdb_sqlparser::{BinOp, ColumnRef, Expr, Literal, Select, SelectItem, TableRef};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execution context: the UDF registry.
pub struct Ctx<'a> {
    pub udfs: &'a UdfRegistry,
}

/// A flat schema for column resolution: `(source alias, column name)` per
/// position, both lowercase.
#[derive(Clone, Debug, Default)]
pub struct RowSchema {
    cols: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Builds a schema for a single table under an optional alias.
    pub fn for_table(table: &Table, alias: Option<&str>) -> Self {
        Self::for_columns(table.columns(), alias)
    }

    /// Builds a schema from raw column metadata under an optional alias
    /// (shared by [`RowSchema::for_table`] and view-based sources).
    pub fn for_columns(columns: &[ColumnMeta], alias: Option<&str>) -> Self {
        let alias = alias.map(|a| a.to_lowercase());
        RowSchema {
            cols: columns
                .iter()
                .map(|c| (alias.clone(), c.name.to_lowercase()))
                .collect(),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &RowSchema) -> RowSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowSchema { cols }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Column name at position `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.cols[i].1
    }

    /// Resolves a (possibly qualified) column reference.
    pub fn resolve(&self, cref: &ColumnRef) -> Result<usize, EngineError> {
        let want_col = cref.column.to_lowercase();
        let want_table = cref.table.as_ref().map(|t| t.to_lowercase());
        let mut found = None;
        for (i, (alias, name)) in self.cols.iter().enumerate() {
            if *name != want_col {
                continue;
            }
            if let Some(wt) = &want_table {
                if alias.as_deref() != Some(wt.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(EngineError::AmbiguousColumn(cref.to_string()));
            }
            found = Some(i);
        }
        found.ok_or_else(|| EngineError::ColumnNotFound(cref.to_string()))
    }

    /// True if every column in `e` resolves in this schema.
    pub fn covers(&self, e: &Expr) -> bool {
        let mut ok = true;
        e.walk(&mut |node| {
            if let Expr::Column(c) = node {
                if self.resolve(c).is_err() {
                    ok = false;
                }
            }
        });
        ok
    }
}

/// Converts a literal to a value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bytes(b) => Value::Bytes(b.clone()),
        Literal::Null => Value::Null,
    }
}

/// SQL `LIKE` with `%` and `_` wildcards, case-insensitive (MySQL default).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    rec(&t, &p)
}

fn bool_val(b: bool) -> Value {
    Value::Int(b as i64)
}

/// Three-valued logic helper: `Some(bool)` or `None` for SQL NULL.
fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        other => Some(other.is_truthy()),
    }
}

fn from_truth(t: Option<bool>) -> Value {
    match t {
        Some(b) => bool_val(b),
        None => Value::Null,
    }
}

/// Evaluates an expression against one row.
pub fn eval(
    e: &Expr,
    schema: &RowSchema,
    row: &[Value],
    ctx: &Ctx<'_>,
) -> Result<Value, EngineError> {
    match e {
        Expr::Column(c) => Ok(row[schema.resolve(c)?].clone()),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => {
                    let l = truth(&eval(left, schema, row, ctx)?);
                    if l == Some(false) {
                        return Ok(bool_val(false));
                    }
                    let r = truth(&eval(right, schema, row, ctx)?);
                    return Ok(match (l, r) {
                        (_, Some(false)) => bool_val(false),
                        (Some(true), Some(true)) => bool_val(true),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    let l = truth(&eval(left, schema, row, ctx)?);
                    if l == Some(true) {
                        return Ok(bool_val(true));
                    }
                    let r = truth(&eval(right, schema, row, ctx)?);
                    return Ok(match (l, r) {
                        (_, Some(true)) => bool_val(true),
                        (Some(false), Some(false)) => bool_val(false),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let lv = eval(left, schema, row, ctx)?;
            let rv = eval(right, schema, row, ctx)?;
            if op.is_comparison() {
                return Ok(match lv.sql_cmp(&rv) {
                    None => Value::Null,
                    Some(ord) => bool_val(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::NotEq => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::LtEq => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::GtEq => ord != Ordering::Less,
                        _ => unreachable!("comparison op"),
                    }),
                });
            }
            // Arithmetic over integers; NULL propagates.
            let (Some(a), Some(b)) = (lv.as_int(), rv.as_int()) else {
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                // String concatenation via `+` is not SQL; reject.
                return Err(EngineError::TypeMismatch(format!(
                    "arithmetic on non-integers: {e}"
                )));
            };
            Ok(match op {
                BinOp::Add => Value::Int(a.wrapping_add(b)),
                BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_div(b))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_rem(b))
                    }
                }
                _ => unreachable!("arithmetic op"),
            })
        }
        Expr::Not(inner) => {
            let v = eval(inner, schema, row, ctx)?;
            Ok(from_truth(truth(&v).map(|b| !b)))
        }
        Expr::Neg(inner) => {
            let v = eval(inner, schema, row, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                _ => Err(EngineError::TypeMismatch("negating non-integer".into())),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let p = eval(pattern, schema, row, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => Ok(bool_val(like_match(&s, &pat) != *negated)),
                _ => Err(EngineError::TypeMismatch("LIKE on non-strings".into())),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, schema, row, ctx)?;
                match v.sql_cmp(&iv) {
                    Some(Ordering::Equal) => return Ok(bool_val(!*negated)),
                    None if iv.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(bool_val(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let lo = eval(low, schema, row, ctx)?;
            let hi = eval(high, schema, row, ctx)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(bool_val(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row, ctx)?;
            Ok(bool_val(v.is_null() != *negated))
        }
        Expr::Func { name, args, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, schema, row, ctx)?);
            }
            scalar_function(name, &vals, ctx)
        }
        // Placeholders must be bound (substituted with literals) before
        // a statement reaches the engine.
        Expr::Param(n) => Err(EngineError::TypeMismatch(format!("unbound parameter ${n}"))),
    }
}

/// Built-in scalar functions plus registered scalar UDFs.
fn scalar_function(name: &str, args: &[Value], ctx: &Ctx<'_>) -> Result<Value, EngineError> {
    if let Some(udf) = ctx.udfs.scalar(name) {
        return udf(args);
    }
    let arg = |i: usize| -> Result<&Value, EngineError> {
        args.get(i).ok_or(EngineError::ArityMismatch {
            expected: i + 1,
            found: args.len(),
        })
    };
    match name {
        "LOWER" => match arg(0)? {
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            Value::Null => Ok(Value::Null),
            _ => Err(EngineError::TypeMismatch("LOWER on non-string".into())),
        },
        "UPPER" => match arg(0)? {
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            Value::Null => Ok(Value::Null),
            _ => Err(EngineError::TypeMismatch("UPPER on non-string".into())),
        },
        "LENGTH" => match arg(0)? {
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
            Value::Null => Ok(Value::Null),
            _ => Err(EngineError::TypeMismatch("LENGTH on integer".into())),
        },
        "SUBSTR" | "SUBSTRING" => {
            let s = match arg(0)? {
                Value::Str(s) => s.clone(),
                Value::Null => return Ok(Value::Null),
                _ => return Err(EngineError::TypeMismatch("SUBSTR on non-string".into())),
            };
            let start = arg(1)?.as_int().unwrap_or(1).max(1) as usize - 1;
            let len = args
                .get(2)
                .and_then(|v| v.as_int())
                .map(|l| l.max(0) as usize);
            let chars: Vec<char> = s.chars().collect();
            let end = len.map_or(chars.len(), |l| (start + l).min(chars.len()));
            if start >= chars.len() {
                return Ok(Value::Str(String::new()));
            }
            Ok(Value::Str(chars[start..end].iter().collect()))
        }
        // Date parts over YYYYMMDD integer encodings (the engine's stand-in
        // for SQL date manipulation; these are exactly the operations
        // CryptDB cannot run over encrypted data — §8.2).
        "YEAR" => date_part(arg(0)?, |d| d / 10_000),
        "MONTH" => date_part(arg(0)?, |d| d / 100 % 100),
        "DAY" => date_part(arg(0)?, |d| d % 100),
        "ABS" => match arg(0)? {
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Null => Ok(Value::Null),
            _ => Err(EngineError::TypeMismatch("ABS on non-integer".into())),
        },
        "BITAND" => {
            let (Some(a), Some(b)) = (arg(0)?.as_int(), arg(1)?.as_int()) else {
                return Ok(Value::Null);
            };
            Ok(Value::Int(a & b))
        }
        "BITOR" => {
            let (Some(a), Some(b)) = (arg(0)?.as_int(), arg(1)?.as_int()) else {
                return Ok(Value::Null);
            };
            Ok(Value::Int(a | b))
        }
        "COALESCE" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        other => Err(EngineError::UnknownFunction(other.to_string())),
    }
}

fn date_part(v: &Value, f: impl Fn(i64) -> i64) -> Result<Value, EngineError> {
    match v {
        Value::Int(d) => Ok(Value::Int(f(*d))),
        Value::Null => Ok(Value::Null),
        _ => Err(EngineError::TypeMismatch(
            "date function on non-integer".into(),
        )),
    }
}

/// Splits an expression into AND-conjuncts.
pub fn split_and(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_and(left);
            out.extend(split_and(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// True if the expression contains an aggregate call.
pub fn has_aggregate(e: &Expr, ctx: &Ctx<'_>) -> bool {
    let mut found = false;
    e.walk(&mut |node| {
        if let Expr::Func { name, .. } = node {
            if is_aggregate_name(name, ctx) {
                found = true;
            }
        }
    });
    found
}

fn is_aggregate_name(name: &str, ctx: &Ctx<'_>) -> bool {
    matches!(name, "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") || ctx.udfs.aggregate(name).is_some()
}

/// Evaluates an expression in *group context*: aggregates fold over the
/// group's rows, everything else evaluates against the group's first row
/// (or an all-NULL row for an empty group).
fn eval_grouped(
    e: &Expr,
    schema: &RowSchema,
    rows: &[&Vec<Value>],
    null_row: &[Value],
    ctx: &Ctx<'_>,
) -> Result<Value, EngineError> {
    let first: &[Value] = rows.first().map_or(null_row, |r| r.as_slice());
    if let Expr::Func {
        name,
        args,
        star,
        distinct,
    } = e
    {
        if is_aggregate_name(name, ctx) {
            return eval_aggregate(name, args, *star, *distinct, schema, rows, ctx);
        }
    }
    // Rebuilding the expression with aggregate subtrees replaced is
    // overkill; instead recurse manually over composite nodes.
    match e {
        Expr::Binary { op, left, right } => {
            let l = eval_grouped(left, schema, rows, null_row, ctx)?;
            let r = eval_grouped(right, schema, rows, null_row, ctx)?;
            // Reuse scalar eval by wrapping the computed values as literals.
            let le = value_to_literal_expr(l);
            let re = value_to_literal_expr(r);
            eval(&Expr::binary(*op, le, re), schema, first, ctx)
        }
        Expr::Not(inner) => {
            let v = eval_grouped(inner, schema, rows, null_row, ctx)?;
            eval(
                &Expr::Not(Box::new(value_to_literal_expr(v))),
                schema,
                first,
                ctx,
            )
        }
        Expr::Neg(inner) => {
            let v = eval_grouped(inner, schema, rows, null_row, ctx)?;
            eval(
                &Expr::Neg(Box::new(value_to_literal_expr(v))),
                schema,
                first,
                ctx,
            )
        }
        other => eval(other, schema, first, ctx),
    }
}

fn value_to_literal_expr(v: Value) -> Expr {
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Str(s) => Literal::Str(s),
        Value::Bytes(b) => Literal::Bytes(b),
    })
}

fn eval_aggregate(
    name: &str,
    args: &[Expr],
    star: bool,
    distinct: bool,
    schema: &RowSchema,
    rows: &[&Vec<Value>],
    ctx: &Ctx<'_>,
) -> Result<Value, EngineError> {
    // Registered aggregate UDFs (e.g. HOM_SUM) take one argument.
    if let Some(agg) = ctx.udfs.aggregate(name) {
        let agg = agg.clone();
        let mut acc = agg.init.clone();
        for row in rows {
            let v = eval(&args[0], schema, row, ctx)?;
            if !v.is_null() {
                acc = (agg.step)(acc, &v)?;
            }
        }
        return Ok(acc);
    }
    if name == "COUNT" && star {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg = args.first().ok_or(EngineError::ArityMismatch {
        expected: 1,
        found: 0,
    })?;
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval(arg, schema, row, ctx)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    match name {
        "COUNT" => Ok(Value::Int(values.len() as i64)),
        "SUM" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc: i64 = 0;
            for v in &values {
                acc = acc
                    .wrapping_add(v.as_int().ok_or_else(|| {
                        EngineError::TypeMismatch("SUM over non-integers".into())
                    })?);
            }
            Ok(Value::Int(acc))
        }
        "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc: i64 = 0;
            for v in &values {
                acc = acc
                    .wrapping_add(v.as_int().ok_or_else(|| {
                        EngineError::TypeMismatch("AVG over non-integers".into())
                    })?);
            }
            Ok(Value::Int(acc / values.len() as i64))
        }
        "MIN" => Ok(values
            .into_iter()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "MAX" => Ok(values
            .into_iter()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        other => Err(EngineError::UnknownFunction(other.to_string())),
    }
}

// ---- SELECT planning & execution ----

/// One scan source: a shard-consistent table view plus its schema under
/// its alias.
pub struct Source<'a> {
    pub view: &'a TableView<'a>,
    pub schema: RowSchema,
}

impl<'a> Source<'a> {
    pub fn new(view: &'a TableView<'a>, tref: &TableRef) -> Self {
        let alias = Some(
            tref.alias
                .clone()
                .unwrap_or_else(|| tref.name.clone())
                .to_lowercase(),
        );
        let schema = RowSchema::for_columns(view.columns(), alias.as_deref());
        Source { view, schema }
    }
}

/// Public wrapper used by UPDATE/DELETE planning in the engine facade.
pub fn index_candidates_public(
    view: &TableView<'_>,
    schema: &RowSchema,
    filters: &[Expr],
) -> Option<Vec<u64>> {
    index_candidates(view, schema, filters)
}

/// Uses an index to produce candidate rowids for the given single-source
/// filter conjuncts; `None` means full scan.
fn index_candidates(
    table: &TableView<'_>,
    schema: &RowSchema,
    filters: &[Expr],
) -> Option<Vec<u64>> {
    // Prefer equality probes, then ranges.
    let mut range_choice: Option<Vec<u64>> = None;
    for f in filters {
        match f {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let (col, lit, op) = match (&**left, &**right) {
                    (Expr::Column(c), Expr::Literal(l)) => (c, l, *op),
                    (Expr::Literal(l), Expr::Column(c)) => (c, l, flip(*op)),
                    _ => continue,
                };
                let Ok(pos) = schema.resolve(col) else {
                    continue;
                };
                if !table.has_index(pos) {
                    continue;
                }
                let v = literal_value(lit);
                match op {
                    BinOp::Eq => return table.index_lookup(pos, &v),
                    BinOp::Gt | BinOp::GtEq => {
                        // Inclusive bound is fine: the residual filter
                        // re-checks strictness.
                        range_choice = table.index_range(pos, Some(&v), None);
                    }
                    BinOp::Lt | BinOp::LtEq => {
                        range_choice = table.index_range(pos, None, Some(&v));
                    }
                    _ => {}
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                    (&**expr, &**low, &**high)
                else {
                    continue;
                };
                let Ok(pos) = schema.resolve(c) else { continue };
                if !table.has_index(pos) {
                    continue;
                }
                range_choice =
                    table.index_range(pos, Some(&literal_value(lo)), Some(&literal_value(hi)));
            }
            Expr::InList {
                expr,
                list,
                negated: false,
            } => {
                let Expr::Column(c) = &**expr else { continue };
                let Ok(pos) = schema.resolve(c) else { continue };
                if !table.has_index(pos) || !list.iter().all(|e| matches!(e, Expr::Literal(_))) {
                    continue;
                }
                let mut ids = Vec::new();
                for l in list {
                    if let Expr::Literal(l) = l {
                        ids.extend(
                            table
                                .index_lookup(pos, &literal_value(l))
                                .unwrap_or_default(),
                        );
                    }
                }
                return Some(ids);
            }
            _ => {}
        }
    }
    range_choice
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Scans one source applying its filters (with index acceleration).
fn scan_source(
    src: &Source<'_>,
    filters: &[Expr],
    ctx: &Ctx<'_>,
) -> Result<Vec<Vec<Value>>, EngineError> {
    let mut out = Vec::new();
    let mut push = |row: &Vec<Value>| -> Result<(), EngineError> {
        for f in filters {
            if !eval(f, &src.schema, row, ctx)?.is_truthy() {
                return Ok(());
            }
        }
        out.push(row.clone());
        Ok(())
    };
    match index_candidates(src.view, &src.schema, filters) {
        Some(ids) => {
            for id in ids {
                if let Some(row) = src.view.row(id) {
                    push(row)?;
                }
            }
        }
        None => {
            for (_, row) in src.view.iter() {
                push(row)?;
            }
        }
    }
    Ok(out)
}

/// Runs a `SELECT` over the locked sources.
///
/// `sources` must contain one entry per `FROM` table followed by one per
/// explicit `JOIN`, in order; `join_ons` carries the `ON` expressions.
pub fn run_select(
    sources: &[Source<'_>],
    join_ons: &[Expr],
    select: &Select,
    ctx: &Ctx<'_>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), EngineError> {
    if sources.is_empty() {
        // SELECT without FROM: evaluate projections once on an empty row.
        let schema = RowSchema::default();
        let mut names = Vec::new();
        let mut row = Vec::new();
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => {
                    return Err(EngineError::Unsupported("SELECT * without FROM".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                    row.push(eval(expr, &schema, &[], ctx)?);
                }
            }
        }
        return Ok((names, vec![row]));
    }

    // Gather all conjuncts: WHERE plus JOIN ... ON.
    let mut pool: Vec<Expr> = Vec::new();
    if let Some(sel) = &select.selection {
        pool.extend(split_and(sel));
    }
    for on in join_ons {
        pool.extend(split_and(on));
    }

    // Classify conjuncts: single-source filters by source position.
    let mut source_filters: Vec<Vec<Expr>> = vec![Vec::new(); sources.len()];
    let mut residual: Vec<Expr> = Vec::new();
    let mut join_edges: Vec<(usize, ColumnRef, usize, ColumnRef, Expr)> = Vec::new();
    'conj: for c in pool {
        for (i, s) in sources.iter().enumerate() {
            if s.schema.covers(&c) {
                source_filters[i].push(c);
                continue 'conj;
            }
        }
        // Equi-join edge between two sources?
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c
        {
            if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
                let fa = sources.iter().position(|s| s.schema.resolve(a).is_ok());
                let fb = sources.iter().position(|s| s.schema.resolve(b).is_ok());
                if let (Some(ia), Some(ib)) = (fa, fb) {
                    if ia != ib {
                        join_edges.push((ia, a.clone(), ib, b.clone(), c.clone()));
                        continue 'conj;
                    }
                }
            }
        }
        residual.push(c);
    }

    // Join sources left to right, preferring hash joins on available edges.
    let mut acc_rows = scan_source(&sources[0], &source_filters[0], ctx)?;
    let mut acc_schema = sources[0].schema.clone();
    let mut joined: Vec<usize> = vec![0];
    for (k, src) in sources.iter().enumerate().skip(1) {
        let right_rows = scan_source(src, &source_filters[k], ctx)?;
        // Find a hash-joinable edge between the accumulated sources and k.
        let edge_pos = join_edges.iter().position(|(ia, _, ib, _, _)| {
            (joined.contains(ia) && *ib == k) || (joined.contains(ib) && *ia == k)
        });
        if let Some(pos) = edge_pos {
            let (ia, ca, _ib, cb, _) = join_edges.remove(pos);
            let (acc_col, right_col) = if joined.contains(&ia) {
                (ca, cb)
            } else {
                (cb, ca)
            };
            let acc_idx = acc_schema.resolve(&acc_col)?;
            let right_idx = src.schema.resolve(&right_col)?;
            let mut hash: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, r) in right_rows.iter().enumerate() {
                if !r[right_idx].is_null() {
                    hash.entry(r[right_idx].clone()).or_default().push(i);
                }
            }
            let mut next = Vec::new();
            for arow in &acc_rows {
                if let Some(matches) = hash.get(&arow[acc_idx]) {
                    for &ri in matches {
                        let mut joined_row = arow.clone();
                        joined_row.extend(right_rows[ri].iter().cloned());
                        next.push(joined_row);
                    }
                }
            }
            acc_rows = next;
        } else {
            // Cartesian product fallback.
            let mut next = Vec::with_capacity(acc_rows.len() * right_rows.len());
            for arow in &acc_rows {
                for rrow in &right_rows {
                    let mut joined_row = arow.clone();
                    joined_row.extend(rrow.iter().cloned());
                    next.push(joined_row);
                }
            }
            acc_rows = next;
        }
        acc_schema = acc_schema.concat(&src.schema);
        joined.push(k);
    }

    // Remaining join edges and residual conjuncts as filters.
    let mut final_filters = residual;
    final_filters.extend(join_edges.into_iter().map(|(_, _, _, _, e)| e));
    if !final_filters.is_empty() {
        let mut kept = Vec::new();
        'row: for row in acc_rows {
            for f in &final_filters {
                if !eval(f, &acc_schema, &row, ctx)?.is_truthy() {
                    continue 'row;
                }
            }
            kept.push(row);
        }
        acc_rows = kept;
    }

    project_and_finish(acc_rows, &acc_schema, select, ctx)
}

/// Grouping, projection, HAVING, DISTINCT, ORDER BY, LIMIT.
fn project_and_finish(
    rows: Vec<Vec<Value>>,
    schema: &RowSchema,
    select: &Select,
    ctx: &Ctx<'_>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), EngineError> {
    let grouped = !select.group_by.is_empty()
        || select
            .projections
            .iter()
            .any(|p| matches!(p, SelectItem::Expr { expr, .. } if has_aggregate(expr, ctx)))
        || select
            .having
            .as_ref()
            .is_some_and(|h| has_aggregate(h, ctx));

    // Output column names.
    let mut names = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                for i in 0..schema.len() {
                    names.push(schema.name(i).to_string());
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| expr.to_string()));
            }
        }
    }

    // Produce (output row, sort keys) pairs.
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    let mut emit = |out_row: Vec<Value>, keys: Vec<Value>| {
        produced.push((out_row, keys));
    };

    if grouped {
        // Partition rows by group key (single group when no GROUP BY).
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                key.push(eval(g, schema, row, ctx)?);
            }
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(i);
        }
        if select.group_by.is_empty() && rows.is_empty() {
            // Aggregates over an empty input still produce one row.
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }
        let null_row: Vec<Value> = vec![Value::Null; schema.len()];
        for key in order {
            let idxs = &groups[&key];
            let grows: Vec<&Vec<Value>> = idxs.iter().map(|&i| &rows[i]).collect();
            if let Some(h) = &select.having {
                if !eval_grouped(h, schema, &grows, &null_row, ctx)?.is_truthy() {
                    continue;
                }
            }
            let first: &[Value] = grows.first().map_or(null_row.as_slice(), |r| r.as_slice());
            let mut out = Vec::new();
            for item in &select.projections {
                match item {
                    SelectItem::Wildcard => out.extend(first.iter().cloned()),
                    SelectItem::Expr { expr, .. } => {
                        out.push(eval_grouped(expr, schema, &grows, &null_row, ctx)?)
                    }
                }
            }
            let mut keys = Vec::new();
            for ob in &select.order_by {
                keys.push(order_key(
                    &ob.expr,
                    schema,
                    Some(&grows),
                    first,
                    &out,
                    &names,
                    ctx,
                )?);
            }
            emit(out, keys);
        }
    } else {
        for row in &rows {
            let mut out = Vec::new();
            for item in &select.projections {
                match item {
                    SelectItem::Wildcard => out.extend(row.iter().cloned()),
                    SelectItem::Expr { expr, .. } => out.push(eval(expr, schema, row, ctx)?),
                }
            }
            let mut keys = Vec::new();
            for ob in &select.order_by {
                keys.push(order_key(&ob.expr, schema, None, row, &out, &names, ctx)?);
            }
            emit(out, keys);
        }
    }

    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        produced.retain(|(row, _)| seen.insert(row.clone()));
    }

    if !select.order_by.is_empty() {
        let dirs: Vec<bool> = select.order_by.iter().map(|o| o.asc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, asc) in dirs.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                if ord != Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            Ordering::Equal
        });
    }

    let mut out_rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(limit) = select.limit {
        out_rows.truncate(limit as usize);
    }
    Ok((names, out_rows))
}

/// Evaluates an ORDER BY key: first as an output alias, then as a source
/// expression (in group context when grouped).
fn order_key(
    e: &Expr,
    schema: &RowSchema,
    grows: Option<&[&Vec<Value>]>,
    first_row: &[Value],
    out_row: &[Value],
    names: &[String],
    ctx: &Ctx<'_>,
) -> Result<Value, EngineError> {
    if let Expr::Column(c) = e {
        if c.table.is_none() {
            if let Some(pos) = names.iter().position(|n| n.eq_ignore_ascii_case(&c.column)) {
                return Ok(out_row[pos].clone());
            }
        }
    }
    match grows {
        Some(rows) => {
            let null_row: Vec<Value> = vec![Value::Null; schema.len()];
            eval_grouped(e, schema, rows, &null_row, ctx)
        }
        None => eval(e, schema, first_row, ctx),
    }
}
