//! An in-memory SQL DBMS with user-defined functions.
//!
//! This crate is the substitute for the paper's unmodified MySQL/Postgres
//! server (see DESIGN.md). CryptDB's architecture demands only two things
//! of the DBMS: standard SQL processing, and the ability to register UDFs
//! that compute on ciphertexts (`DECRYPT_RND`, `HOM_SUM`, `SEARCH_MATCH`,
//! `JOIN_ADJ`, ...). The engine is therefore completely CryptDB-agnostic —
//! it stores opaque values, maintains B-tree indexes over them, and calls
//! whatever UDFs the proxy registered, exactly like the paper's server-side
//! deployment.
//!
//! Features:
//!
//! * tables with `Int`/`Text` columns storing [`Value`]s (`NULL`, integer,
//!   string, raw bytes — ciphertexts are bytes),
//! * secondary B-tree indexes used for equality and range predicates
//!   (indexes over DET/OPE ciphertexts work; over RND they are useless,
//!   which is what sinks the strawman in Fig. 11),
//! * a query executor with selection push-down, hash equi-joins, grouping
//!   and aggregates, `ORDER BY`/`LIMIT`, `DISTINCT`,
//! * scalar and aggregate UDF registries,
//! * hash-sharded row storage with per-shard reader/writer locks (the
//!   table lock is only a schema/DDL lock), so multi-core throughput
//!   scales even when every writer targets the same table (Fig. 10's
//!   shape without the single-table write cliff),
//! * snapshot transactions (`BEGIN`/`COMMIT`/`ROLLBACK`).

#![forbid(unsafe_code)]

mod engine;
mod error;
mod exec;
mod table;
mod udf;
mod value;
mod wal_store;

pub use engine::{DurabilityStats, Engine, EngineRecovery, QueryResult};
pub use error::EngineError;
pub use table::{ColumnMeta, RowIter, ShardWriteSet, Table, TableView};
pub use udf::{AggregateUdf, ScalarUdf, UdfRegistry};
pub use value::Value;
pub use wal_store::WalOp;
// Durability configuration types, re-exported so callers configure
// persistence without depending on cryptdb-wal directly.
pub use cryptdb_wal::{FaultPlan, FsyncPolicy, RecoveryReport, TailState, WalConfig, WalStats};
