//! Byte codecs for WAL records and snapshots.
//!
//! A WAL record carries the *physical* engine mutations one statement
//! applied — rowid-keyed, so replay reproduces the exact in-memory state
//! including rowid allocation — plus an optional opaque `meta` blob the
//! proxy uses to persist its encrypted-schema state atomically with the
//! engine ops it depends on (onion-level exposure, join re-keys, DDL).
//! Everything here is ciphertext or structural metadata the server
//! already sees; nothing widens the paper's leakage profile.
//!
//! Encodings are little-endian, length-prefixed, and versioned with a
//! leading byte so a future format bump can coexist with old logs.

use crate::error::EngineError;
use crate::table::{ColumnMeta, Table};
use crate::value::Value;
use cryptdb_sqlparser::ColumnType;

/// Format version of record payloads.
const RECORD_VERSION: u8 = 1;
/// Format version of snapshot payloads.
const SNAPSHOT_VERSION: u8 = 1;

/// One physical engine mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A table was created.
    CreateTable {
        /// Original-case table name.
        name: String,
        /// Declared columns.
        columns: Vec<ColumnMeta>,
    },
    /// An index was (re)built.
    CreateIndex {
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// A table was dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// A row was inserted under `rowid`.
    InsertRow {
        /// Table name.
        table: String,
        /// Rowid assigned by the original run.
        rowid: u64,
        /// Full-width row.
        row: Vec<Value>,
    },
    /// One cell was replaced. Replay on a missing rowid is a no-op
    /// (mirrors `Table::update_cell`).
    UpdateCell {
        /// Table name.
        table: String,
        /// Target rowid.
        rowid: u64,
        /// Column position.
        col: u32,
        /// New value.
        value: Value,
    },
    /// A row was deleted (no-op on a missing rowid).
    DeleteRow {
        /// Table name.
        table: String,
        /// Target rowid.
        rowid: u64,
    },
    /// `BEGIN` marker: replay re-creates the engine's global snapshot.
    Begin,
    /// `COMMIT` marker.
    Commit,
    /// `ROLLBACK` marker.
    Rollback,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            put_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(3);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
    }
}

/// Sequential reader over a record/snapshot payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(what: &str) -> EngineError {
        EngineError::Wal(format!("record decode: {what}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.buf.len() - self.pos < n {
            return Err(Self::err("unexpected end of payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, EngineError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, EngineError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| Self::err("invalid utf-8"))
    }

    fn value(&mut self) -> Result<Value, EngineError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Str(self.str()?)),
            3 => {
                let n = self.u32()? as usize;
                Ok(Value::Bytes(self.take(n)?.to_vec()))
            }
            t => Err(Self::err(&format!("unknown value tag {t}"))),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::CreateTable { name, columns } => {
            out.push(1);
            put_str(out, name);
            put_u32(out, columns.len() as u32);
            for c in columns {
                put_str(out, &c.name);
                out.push(match c.ty {
                    ColumnType::Int => 0,
                    ColumnType::Text => 1,
                });
            }
        }
        WalOp::CreateIndex { table, column } => {
            out.push(2);
            put_str(out, table);
            put_str(out, column);
        }
        WalOp::DropTable { name } => {
            out.push(3);
            put_str(out, name);
        }
        WalOp::InsertRow { table, rowid, row } => {
            out.push(4);
            put_str(out, table);
            put_u64(out, *rowid);
            put_u32(out, row.len() as u32);
            for v in row {
                put_value(out, v);
            }
        }
        WalOp::UpdateCell {
            table,
            rowid,
            col,
            value,
        } => {
            out.push(5);
            put_str(out, table);
            put_u64(out, *rowid);
            put_u32(out, *col);
            put_value(out, value);
        }
        WalOp::DeleteRow { table, rowid } => {
            out.push(6);
            put_str(out, table);
            put_u64(out, *rowid);
        }
        WalOp::Begin => out.push(7),
        WalOp::Commit => out.push(8),
        WalOp::Rollback => out.push(9),
    }
}

fn read_op(r: &mut Reader<'_>) -> Result<WalOp, EngineError> {
    match r.u8()? {
        1 => {
            let name = r.str()?;
            let n = r.u32()? as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let cname = r.str()?;
                let ty = match r.u8()? {
                    0 => ColumnType::Int,
                    1 => ColumnType::Text,
                    t => return Err(Reader::err(&format!("unknown column type {t}"))),
                };
                columns.push(ColumnMeta { name: cname, ty });
            }
            Ok(WalOp::CreateTable { name, columns })
        }
        2 => Ok(WalOp::CreateIndex {
            table: r.str()?,
            column: r.str()?,
        }),
        3 => Ok(WalOp::DropTable { name: r.str()? }),
        4 => {
            let table = r.str()?;
            let rowid = r.u64()?;
            let n = r.u32()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.value()?);
            }
            Ok(WalOp::InsertRow { table, rowid, row })
        }
        5 => Ok(WalOp::UpdateCell {
            table: r.str()?,
            rowid: r.u64()?,
            col: r.u32()?,
            value: r.value()?,
        }),
        6 => Ok(WalOp::DeleteRow {
            table: r.str()?,
            rowid: r.u64()?,
        }),
        7 => Ok(WalOp::Begin),
        8 => Ok(WalOp::Commit),
        9 => Ok(WalOp::Rollback),
        t => Err(Reader::err(&format!("unknown op tag {t}"))),
    }
}

/// Encodes one record payload: the ops a statement applied plus an
/// optional proxy meta blob that must land atomically with them.
pub fn encode_record(ops: &[WalOp], meta: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(RECORD_VERSION);
    put_u32(&mut out, ops.len() as u32);
    for op in ops {
        put_op(&mut out, op);
    }
    match meta {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u32(&mut out, m.len() as u32);
            out.extend_from_slice(m);
        }
    }
    out
}

/// Decodes one record payload.
pub fn decode_record(payload: &[u8]) -> Result<(Vec<WalOp>, Option<Vec<u8>>), EngineError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != RECORD_VERSION {
        return Err(Reader::err(&format!("unknown record version {version}")));
    }
    let n = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(read_op(&mut r)?);
    }
    let meta = match r.u8()? {
        0 => None,
        1 => {
            let len = r.u32()? as usize;
            Some(r.take(len)?.to_vec())
        }
        t => return Err(Reader::err(&format!("unknown meta tag {t}"))),
    };
    if !r.done() {
        return Err(Reader::err("trailing bytes"));
    }
    Ok((ops, meta))
}

/// Encodes a full-engine snapshot: every table (schema, rowid allocator,
/// index set, rows — ciphertext only) plus the latest proxy meta blob.
/// Tables are sorted by name for deterministic bytes.
pub fn encode_snapshot(tables: &[(&str, &Table)], meta: Option<&[u8]>) -> Vec<u8> {
    let mut sorted: Vec<&(&str, &Table)> = tables.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = Vec::with_capacity(256);
    out.push(SNAPSHOT_VERSION);
    put_u32(&mut out, sorted.len() as u32);
    for (_, t) in sorted {
        put_str(&mut out, t.name());
        let cols = t.columns();
        put_u32(&mut out, cols.len() as u32);
        for c in cols {
            put_str(&mut out, &c.name);
            out.push(match c.ty {
                ColumnType::Int => 0,
                ColumnType::Text => 1,
            });
        }
        put_u64(&mut out, t.next_rowid());
        // A consistent all-shard view; the caller holds each table's
        // schema lock exclusively, so the shard read guards are
        // uncontended. Iteration merges shards in ascending rowid
        // order, keeping snapshot bytes identical to the pre-sharding
        // layout.
        let view = t.read_view();
        let indexed = view.indexed_columns();
        put_u32(&mut out, indexed.len() as u32);
        for col in indexed {
            put_u32(&mut out, col as u32);
        }
        put_u32(&mut out, view.row_count() as u32);
        for (rowid, row) in view.iter() {
            put_u64(&mut out, rowid);
            for v in row {
                put_value(&mut out, v);
            }
        }
    }
    match meta {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u32(&mut out, m.len() as u32);
            out.extend_from_slice(m);
        }
    }
    out
}

/// Decodes a snapshot into `(tables, meta)`; table rows keep their
/// original rowids and the allocator watermark.
#[allow(clippy::type_complexity)]
pub fn decode_snapshot(payload: &[u8]) -> Result<(Vec<Table>, Option<Vec<u8>>), EngineError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(Reader::err(&format!("unknown snapshot version {version}")));
    }
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = r.str()?;
            let ty = match r.u8()? {
                0 => ColumnType::Int,
                1 => ColumnType::Text,
                t => return Err(Reader::err(&format!("unknown column type {t}"))),
            };
            columns.push(ColumnMeta { name: cname, ty });
        }
        let next_rowid = r.u64()?;
        let table = Table::new(&name, columns);
        let nindexed = r.u32()? as usize;
        let mut indexed = Vec::with_capacity(nindexed);
        for _ in 0..nindexed {
            indexed.push(r.u32()? as usize);
        }
        let nrows = r.u32()? as usize;
        let width = table.columns().len();
        for _ in 0..nrows {
            let rowid = r.u64()?;
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(r.value()?);
            }
            table.insert_with_rowid(rowid, row);
        }
        for col in indexed {
            let cname = table
                .columns()
                .get(col)
                .ok_or_else(|| Reader::err("index column out of range"))?
                .name
                .clone();
            table.create_index(&cname)?;
        }
        table.set_next_rowid(next_rowid);
        tables.push(table);
    }
    let meta = match r.u8()? {
        0 => None,
        1 => {
            let len = r.u32()? as usize;
            Some(r.take(len)?.to_vec())
        }
        t => return Err(Reader::err(&format!("unknown meta tag {t}"))),
    };
    if !r.done() {
        return Err(Reader::err("trailing bytes"));
    }
    Ok((tables, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_all_ops() {
        let ops = vec![
            WalOp::CreateTable {
                name: "T1".into(),
                columns: vec![
                    ColumnMeta {
                        name: "rid".into(),
                        ty: ColumnType::Int,
                    },
                    ColumnMeta {
                        name: "c0_eq".into(),
                        ty: ColumnType::Text,
                    },
                ],
            },
            WalOp::CreateIndex {
                table: "t1".into(),
                column: "rid".into(),
            },
            WalOp::InsertRow {
                table: "t1".into(),
                rowid: 7,
                row: vec![Value::Int(1), Value::Bytes(vec![0xde, 0xad])],
            },
            WalOp::UpdateCell {
                table: "t1".into(),
                rowid: 7,
                col: 1,
                value: Value::Str("s|s\n".into()),
            },
            WalOp::DeleteRow {
                table: "t1".into(),
                rowid: 7,
            },
            WalOp::DropTable { name: "t1".into() },
            WalOp::Begin,
            WalOp::Commit,
            WalOp::Rollback,
        ];
        for meta in [None, Some(b"META".as_slice())] {
            let payload = encode_record(&ops, meta);
            let (got_ops, got_meta) = decode_record(&payload).unwrap();
            assert_eq!(got_ops, ops);
            assert_eq!(got_meta.as_deref(), meta);
        }
    }

    #[test]
    fn record_decode_rejects_garbage() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err());
        let mut payload = encode_record(&[WalOp::Begin], None);
        payload.push(0xAB);
        assert!(decode_record(&payload).is_err());
    }

    #[test]
    fn snapshot_roundtrip_preserves_rowids_and_indexes() {
        let t = Table::new(
            "Orders",
            vec![
                ColumnMeta {
                    name: "rid".into(),
                    ty: ColumnType::Int,
                },
                ColumnMeta {
                    name: "c0".into(),
                    ty: ColumnType::Text,
                },
            ],
        );
        t.create_index("rid").unwrap();
        t.insert_with_rowid(3, vec![Value::Int(3), Value::Bytes(vec![1, 2])]);
        t.insert_with_rowid(9, vec![Value::Int(9), Value::Null]);
        t.set_next_rowid(40);
        let payload = encode_snapshot(&[("orders", &t)], Some(b"M"));
        let (tables, meta) = decode_snapshot(&payload).unwrap();
        assert_eq!(meta.as_deref(), Some(b"M".as_slice()));
        assert_eq!(tables.len(), 1);
        let got = &tables[0];
        assert_eq!(got.name(), "Orders");
        assert_eq!(got.next_rowid(), 40);
        assert_eq!(got.indexed_columns(), vec![0]);
        assert_eq!(got.row(3).unwrap()[1], Value::Bytes(vec![1, 2]));
        assert_eq!(got.row(9).unwrap()[0], Value::Int(9));
        assert_eq!(got.index_lookup(0, &Value::Int(9)).unwrap(), vec![9]);
    }
}
