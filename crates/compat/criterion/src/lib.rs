//! Offline drop-in subset of the `criterion` API.
//!
//! Supports the benchmark surface this repository uses: a [`Criterion`]
//! builder (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` with `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple
//! warmup-then-sample loop reporting the mean and best time per
//! iteration — enough to compare schemes, with none of criterion's
//! statistics machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, first warming up, then collecting `sample_size`
    /// samples of adaptively-sized batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup, counting iterations to size measurement batches.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let best = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12}  best {:>12}",
            fmt_ns(mean),
            fmt_ns(best)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions under a single callable.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
    }
}
