//! Offline drop-in subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning
//! interface (`lock()`/`read()`/`write()` return guards directly). A
//! panicked holder does not poison the lock for later users — matching
//! parking_lot semantics — because poison errors are unwrapped into the
//! inner guard.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
