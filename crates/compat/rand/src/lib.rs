//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides exactly the surface the repo uses: [`RngCore`],
//! [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`rngs::StdRng`], and [`thread_rng`].
//!
//! Security split, mirroring the real crate:
//!
//! * [`thread_rng`] is a **CSPRNG** (ChaCha20 seeded from the OS) — it
//!   must be, because security-relevant draws go through it: Paillier
//!   blinding `r`, RND-onion IVs, ECIES ephemeral scalars.
//! * [`rngs::StdRng`] here is xoshiro256**, *non-cryptographic* and
//!   seedable, used for deterministic test inputs and workload
//!   generation only. (The real crate's `StdRng` is also a CSPRNG; no
//!   call site in this repo relies on that, but treat seeded `StdRng`
//!   streams as public.)

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hasher};

/// Error type for fallible RNG operations (never produced by the
/// generators in this crate; exists so `try_fill_bytes` signatures match
/// the real `rand` 0.8).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from fixed data.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the standard
    /// seeding recipe for the xoshiro family).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling a value of `Self` uniformly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type whose values can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd + Standard {
    /// Uniform value in `[lo, hi]`. `width_wraps` marks the full-domain
    /// range whose element count overflows `u128`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let Some(count) = width.checked_add(1) else {
                    // Full u128 domain: every value is fair.
                    return Standard::sample(rng);
                };
                let off = uniform_u128(rng, count);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

/// A range argument accepted by [`Rng::gen_range`]. Generic over the
/// element type (one impl per range shape) so inference can flow from the
/// range into `T`, matching the real `rand` API.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        // end > start, so end - 1 is representable and >= start; sampling
        // [start, end) equals [start, end - 1] but avoiding a generic
        // "minus one" keeps the trait small: resample on the excluded end.
        loop {
            let v = T::sample_between(rng, self.start, self.end);
            if v < self.end {
                return v;
            }
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi)
    }
}

/// Uniform value in `[0, bound)` by rejection from the top 128-bit block.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    assert!(bound > 0);
    if bound.is_power_of_two() {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        return v & (bound - 1);
    }
    // Rejection sampling over the smallest power-of-two cover (the full
    // domain when the cover would be 2^128).
    let mask = bound
        .checked_next_power_of_two()
        .map_or(u128::MAX, |p| p - 1);
    loop {
        let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) & mask;
        if v < bound {
            return v;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the standard non-cryptographic workhorse PRNG.
    #[derive(Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // The all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    /// ChaCha20-based cryptographically strong generator backing
    /// [`super::thread_rng`] — `thread_rng` must stay a CSPRNG because
    /// security-relevant draws (Paillier blinding `r`, RND-layer IVs,
    /// ECIES ephemeral scalars) flow through it, exactly as with the
    /// real `rand` crate's ChaCha-based `ThreadRng`.
    pub struct ChaChaRng {
        key: [u32; 8],
        counter: u64,
        nonce: u64,
        buf: [u8; 64],
        pos: usize,
    }

    impl ChaChaRng {
        pub(crate) fn new(seed: [u8; 32], nonce: u64) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            ChaChaRng {
                key,
                counter: 0,
                nonce,
                buf: [0u8; 64],
                pos: 64,
            }
        }

        fn refill(&mut self) {
            let mut state = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                self.counter as u32,
                (self.counter >> 32) as u32,
                self.nonce as u32,
                (self.nonce >> 32) as u32,
            ];
            let initial = state;
            for _ in 0..10 {
                // Column rounds.
                quarter(&mut state, 0, 4, 8, 12);
                quarter(&mut state, 1, 5, 9, 13);
                quarter(&mut state, 2, 6, 10, 14);
                quarter(&mut state, 3, 7, 11, 15);
                // Diagonal rounds.
                quarter(&mut state, 0, 5, 10, 15);
                quarter(&mut state, 1, 6, 11, 12);
                quarter(&mut state, 2, 7, 8, 13);
                quarter(&mut state, 3, 4, 9, 14);
            }
            for (i, (s, init)) in state.iter().zip(initial.iter()).enumerate() {
                self.buf[4 * i..4 * i + 4].copy_from_slice(&s.wrapping_add(*init).to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            self.pos = 0;
        }
    }

    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl RngCore for ChaChaRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.fill_bytes(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                if self.pos == 64 {
                    self.refill();
                }
                let take = (dest.len() - filled).min(64 - self.pos);
                dest[filled..filled + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
                self.pos += take;
                filled += take;
            }
        }
    }

    /// Handle to a per-thread generator (see [`super::thread_rng`]).
    pub struct ThreadRng(pub(crate) ());

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            super::with_thread_rng(|r| r.next_u32())
        }

        fn next_u64(&mut self) -> u64 {
            super::with_thread_rng(|r| r.next_u64())
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            super::with_thread_rng(|r| r.fill_bytes(dest))
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<rngs::ChaChaRng> = RefCell::new(seed_thread_rng());
}

/// Seeds the per-thread CSPRNG with 32 bytes from the OS
/// (`/dev/urandom`), mixed with per-thread ambient entropy as a
/// defence-in-depth fallback for exotic platforms without it.
fn seed_thread_rng() -> rngs::ChaChaRng {
    let mut seed = [0u8; 32];
    let got_os = std::fs::File::open("/dev/urandom")
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut seed))
        .is_ok();
    // RandomState draws its keys from the OS; the hasher mixes in time
    // and a stack address. XORed on top of (or substituting for) the
    // urandom bytes.
    let mut h = RandomState::new().build_hasher();
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.write_u128(d.as_nanos());
    }
    let marker = 0u8;
    h.write_usize(std::ptr::addr_of!(marker) as usize);
    let mix = h.finish();
    for (i, b) in mix.to_le_bytes().iter().enumerate() {
        seed[i] ^= b;
    }
    if !got_os {
        let mut h2 = RandomState::new().build_hasher();
        h2.write_u64(mix);
        for chunk in seed[8..].chunks_mut(8) {
            h2.write_u8(1);
            let v = h2.finish().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
    rngs::ChaChaRng::new(seed, mix)
}

fn with_thread_rng<T>(f: impl FnOnce(&mut rngs::ChaChaRng) -> T) -> T {
    THREAD_RNG.with(|r| f(&mut r.borrow_mut()))
}

/// A lazily-seeded per-thread **CSPRNG** (ChaCha20, OS-seeded), matching
/// the real `rand::thread_rng` contract.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_chunking_consistent() {
        let mut a = rngs::StdRng::seed_from_u64(3);
        let mut b = rngs::StdRng::seed_from_u64(3);
        let mut ba = [0u8; 24];
        let mut bb = [0u8; 24];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn thread_rng_advances() {
        let mut t = thread_rng();
        assert_ne!(t.next_u64(), t.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
