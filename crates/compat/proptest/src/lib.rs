//! Offline drop-in subset of the `proptest` API.
//!
//! Provides the surface this repository's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range and
//! `any::<T>()` strategies, a regex-subset string strategy (character
//! classes with `{m,n}` repetition), [`collection::vec`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its inputs; cases are generated from a per-test deterministic
//! seed, so failures reproduce across runs), and `ProptestConfig` only
//! carries `cases`.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG (FNV-1a of the test name as the seed).
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; honour PROPTEST_CASES like the
        // original so CI can dial effort up or down.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---- integer ranges ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

// ---- any::<T>() ----

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- regex-subset string strategy ----

/// String literals are strategies: a subset of regex syntax is supported —
/// concatenations of character classes `[a-z0-9_]` (with ranges) under an
/// optional `{n}` / `{m,n}` repetition; a bare class means `{1}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let bytes = pattern.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let (set, next) = match bytes[i] {
            b'[' => parse_class(pattern, i + 1),
            // A literal character outside a class.
            c => (vec![c as char], i + 1),
        };
        i = next;
        let (lo, hi, next) = parse_repetition(pattern, i);
        i = next;
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        for _ in 0..count {
            out.push(set[rng.gen_range(0..set.len())]);
        }
    }
    out
}

/// Parses a character class body starting just after `[`; returns the
/// expanded set and the index just past the closing `]`.
fn parse_class(pattern: &str, mut i: usize) -> (Vec<char>, usize) {
    let bytes = pattern.as_bytes();
    let mut set = Vec::new();
    while i < bytes.len() && bytes[i] != b']' {
        let c = bytes[i] as char;
        if i + 2 < bytes.len() && bytes[i + 1] == b'-' && bytes[i + 2] != b']' {
            let end = bytes[i + 2] as char;
            assert!(c <= end, "bad class range in pattern {pattern:?}");
            for v in c..=end {
                set.push(v);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < bytes.len(), "unterminated class in pattern {pattern:?}");
    (set, i + 1)
}

/// Parses an optional `{n}` / `{m,n}` at `i`; returns `(lo, hi, next)`.
fn parse_repetition(pattern: &str, i: usize) -> (usize, usize, usize) {
    let bytes = pattern.as_bytes();
    if i >= bytes.len() || bytes[i] != b'{' {
        return (1, 1, i);
    }
    let close = pattern[i..]
        .find('}')
        .map(|o| i + o)
        .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
    let body = &pattern[i + 1..close];
    let (lo, hi) = match body.split_once(',') {
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
        Some((a, b)) => (
            a.trim().parse().expect("repetition lower bound"),
            b.trim().parse().expect("repetition upper bound"),
        ),
    };
    (lo, hi, close + 1)
}

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- collections ----

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, m..n)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---- macros ----

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // prop_assume! exits this closure early to skip a case.
                    let mut __body = move || -> ::std::ops::ControlFlow<()> {
                        { $body }
                        ::std::ops::ControlFlow::Continue(())
                    };
                    let _ = __body();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Discards the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("proptest::selftest")
    }

    #[test]
    fn pattern_generation_matches_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[0-9a-f]{1,64}", &mut r);
            assert!((1..=64).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
            let t = generate_from_pattern("[1-9a-f][0-9a-f]{0,60}", &mut r);
            assert!(!t.starts_with('0') && (1..=61).contains(&t.len()));
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (-20i64..20).generate(&mut r);
            assert!((-20..20).contains(&v));
            let w = (1u64..).generate(&mut r);
            assert!(w >= 1);
            let x = (1..=u128::MAX).generate(&mut r);
            assert!(x >= 1);
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut r = rng();
        let strat = collection::vec((0u64..10, "[a-b]{2}").prop_map(|(n, s)| (n, s)), 1..5);
        for _ in 0..50 {
            let v = strat.generate(&mut r);
            assert!((1..5).contains(&v.len()));
            for (n, s) in v {
                assert!(n < 10 && s.len() == 2);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(a in 0u64..100, b in any::<u8>(), s in "[a-z]{1,4}") {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(b as u64 + a, a + b as u64);
            prop_assert_ne!(s.len(), 0);
        }
    }
}
