#!/usr/bin/env python3
"""Render BENCH_*.json gate status + e2e throughput as a GitHub step
summary (markdown). Usage: bench_summary.py FILE [FILE ...]; missing
files are skipped so a failed bench still summarises the others."""
import json
import sys

# Gate display policy for files with a "gates" section: name ->
# (kind, threshold). "min" gates pass at or above the threshold, "max"
# gates pass at or below it, "flag" gates pass when == expected,
# anything unlisted is informational. Thresholds mirror each bench's
# own enforcement (see the bench source and BENCHMARKS.md).
GATE_POLICY = {
    # BENCH_runtime.json
    "batch_pool_vs_scoped": ("min", 0.97),
    "blinding_spike_free": ("flag", 1.0),
    "background_refill_clean": ("flag", 1.0),
    "ope_bounded": ("flag", 1.0),
    # BENCH_e2e.json
    "scaling_4_vs_1": ("min", 2.0),
    "concurrent_matches_serial": ("flag", 1.0),
    "serving_errors": ("flag", 0.0),
    "wire_matches_serial": ("flag", 1.0),
    "wire_errors": ("flag", 0.0),
    "recovery_matches_pre_crash": ("flag", 1.0),
    "recovery_errors": ("flag", 0.0),
    "wire64_matches_serial": ("flag", 1.0),
    "wire64_errors": ("flag", 0.0),
    "overload_p99_ratio": ("max", 5.0),
    "overload_dirty_sheds": ("flag", 0.0),
    "overload_admitted_errors": ("flag", 0.0),
    "drain_lost_acks": ("flag", 0.0),
    "retention_disk_bounded": ("flag", 1.0),
    "recovery_suffix_bounded": ("flag", 1.0),
    "diskfull_lost_acks": ("flag", 0.0),
    "diskfull_reads_served": ("flag", 1.0),
    "diskfull_clean_sheds": ("flag", 1.0),
    "diskfull_self_restored": ("flag", 1.0),
    "prepared_matches_simple": ("flag", 1.0),
    "prepared_vs_simple": ("min", 1.3),
    "same_table_write_scaling": ("min", 2.0),
    "same_table_matches_serial": ("flag", 1.0),
    "same_table_errors": ("flag", 0.0),
}


def verdict(name, value):
    kind, threshold = GATE_POLICY.get(name, ("info", None))
    if kind == "min":
        return ("✅" if value >= threshold else "❌"), f">= {threshold}"
    if kind == "max":
        return ("✅" if value <= threshold else "❌"), f"<= {threshold}"
    if kind == "flag":
        return ("✅" if value == threshold else "❌"), f"== {threshold:g}"
    return "·", ""


def gate_rows(path, data):
    # BENCH_paillier.json style: thresholds live in "enforced_gates" and
    # measured values in "speedups".
    if "enforced_gates" in data:
        speedups = data.get("speedups", {})
        for name, threshold in data["enforced_gates"].items():
            value = speedups.get(name)
            if value is None:
                continue
            status = "✅" if value >= threshold else "❌"
            yield path, name, value, f">= {threshold}", status
    gates = data.get("gates", {})
    for name, value in gates.items():
        # The e2e bench arms the 2x scaling bar only on >= 4-thread
        # hosts (scaling_enforced flag); on a 1-thread build host the
        # ratio is informational, not a failure.
        if name == "scaling_4_vs_1" and gates.get("scaling_enforced") == 0:
            yield path, name, value, ">= 2.0 (not armed: <4 threads)", "·"
            continue
        # Same policy for the same-table write ladder: its 2x bar is
        # armed only on >= 4-hardware-thread hosts.
        if (
            name == "same_table_write_scaling"
            and gates.get("same_table_scaling_enforced") == 0
        ):
            yield path, name, value, ">= 2.0 (not armed: <4 threads)", "·"
            continue
        status, bar = verdict(name, value)
        yield path, name, value, bar, status


def main(paths):
    print("## Bench gates\n")
    print("| file | gate | value | bar | status |")
    print("|---|---|---:|---|---|")
    loaded = {}
    for path in paths:
        try:
            with open(path) as f:
                data = json.load(f)
        except OSError:
            print(f"| {path} | _missing_ | | | ⚠️ |")
            continue
        loaded[path] = data
        for file, name, value, bar, status in gate_rows(path, data):
            print(f"| {file} | {name} | {value:g} | {bar} | {status} |")
    e2e = loaded.get("BENCH_e2e.json")
    if e2e:
        print("\n## Serving throughput (reduced size)\n")
        print(
            f"{e2e.get('modulus_bits', '?')}-bit keys, "
            f"{e2e.get('steps_per_session', '?')} steps/session, "
            f"{e2e.get('host_parallelism', '?')} host threads, "
            f"{e2e.get('worker_threads', '?')} pool workers\n"
        )
        throughput_table("in-process sessions", e2e.get("results", {}))
        # Older artifacts predate the pgwire front-end and have no
        # wire_results key; skip the section rather than KeyError.
        wire = e2e.get("wire_results")
        if wire:
            print()
            throughput_table("wire connections (e2e_wire)", wire)
            overhead = e2e.get("wire_overhead_4_vs_inproc")
            if overhead is not None:
                print(
                    f"\nwire overhead at 4 sessions: {overhead:g}× "
                    "(in-process qps / socket-path qps)"
                )
        # Overload rows postdate the multiplexed edge; every key is
        # optional so older artifacts still render.
        fan = e2e.get("wire64")
        if fan:
            print(
                f"\nwide fan-out: {fan.get('connections', '?')} connections on "
                f"{fan.get('reader_threads', '?')} reader threads — "
                f"{fan.get('qps', 0.0):.1f} qps, "
                f"p50 {fan.get('p50_ns', 0) / 1e6:.3f} ms, "
                f"p99 {fan.get('p99_ns', 0) / 1e6:.3f} ms"
            )
        overload = e2e.get("overload")
        if overload:
            print(
                f"\noverload ({overload.get('flooders', '?')} flooders vs cap "
                f"{overload.get('cap', '?')}): admitted p99 "
                f"{overload.get('p99_unloaded_ns', 0) / 1e6:.3f} ms unloaded → "
                f"{overload.get('p99_flood_ns', 0) / 1e6:.3f} ms under flood "
                f"({overload.get('p99_ratio', 0):g}×), "
                f"{overload.get('clean_sheds', 0)} clean sheds, "
                f"{overload.get('dirty_sheds', 0)} dirty"
            )
        drain = e2e.get("drain")
        if drain:
            print(
                f"\ndrain under flood: {drain.get('acked', 0)} acked inserts, "
                f"{drain.get('lost', 0)} lost after recovery, drain took "
                f"{drain.get('drain_ms', 0):g} ms"
            )
        # Older artifacts predate the WAL; every key is optional here.
        wal = e2e.get("wal_results")
        if wal:
            print("\n## Durability (WAL fsync policy ladder, serial)\n")
            print("| policy | queries/sec |")
            print("|---:|---:|")
            for name, row in wal.items():
                print(f"| {name} | {row.get('qps', 0.0):.1f} |")
            overhead = e2e.get("wal_overhead_everyN_vs_off")
            if overhead is not None:
                print(
                    f"\nWAL overhead, EveryN(64) group commit vs no WAL: "
                    f"{overhead:g}× (informational)"
                )
        recovery = e2e.get("recovery")
        if recovery:
            print(
                f"\nrecovery: {recovery.get('ms', 0):g} ms to replay "
                f"{recovery.get('records', 0)} records "
                f"({recovery.get('log_bytes', 0)} log bytes)"
            )
        # Segmented-WAL rows postdate snapshot-anchored retention; both
        # keys are optional so older artifacts still render.
        bounded = e2e.get("bounded_recovery")
        if bounded:
            print(
                f"\nbounded recovery: {bounded.get('inserts', 0)} inserts left "
                f"{bounded.get('disk_bytes', 0)} bytes in "
                f"{bounded.get('segments', 0)} segments "
                f"({bounded.get('rotations', 0)} rotations, "
                f"{bounded.get('segments_deleted', 0)} deleted by retention); "
                f"reopen replayed {bounded.get('replayed_records', 0)} records "
                f"in {bounded.get('recovery_ms', 0):g} ms"
            )
        # Prepared-statement rows postdate the extended-protocol PR;
        # every key is optional so older artifacts still render.
        prepared = e2e.get("prepared")
        if prepared:
            print(
                f"\nprepared vs simple (in-process, "
                f"{prepared.get('iters', 0)} iters/side): "
                f"{prepared.get('simple_qps', 0.0):.1f} qps re-parsed → "
                f"{prepared.get('prepared_qps', 0.0):.1f} qps prepared "
                f"({prepared.get('ratio', 0):g}×); plan cache: "
                f"{prepared.get('plans_cached', 0)} cached, "
                f"{prepared.get('plan_hits', 0)} hits, "
                f"{prepared.get('plan_misses', 0)} misses, "
                f"{prepared.get('plans_invalidated', 0)} invalidated"
            )
        # Same-table contention rows postdate the sharded row store;
        # the whole section is optional so older artifacts still render.
        same_table = e2e.get("same_table")
        if same_table:
            qps1 = same_table.get("sessions_1", {}).get("qps", 0.0)
            qps4 = same_table.get("sessions_4", {}).get("qps", 0.0)
            print(
                f"\nsame-table write contention "
                f"({same_table.get('ops', 0)} pre-parsed ops on one table): "
                f"{qps1:.1f} qps at 1 thread → {qps4:.1f} qps at 4 threads "
                f"({same_table.get('scaling', 0):g}×)"
            )
        diskfull = e2e.get("disk_full")
        if diskfull:
            print(
                f"\ndisk-full chaos: {diskfull.get('acked', 0)} acked inserts, "
                f"{diskfull.get('sheds_53100', 0)} clean 53100 sheds "
                f"({diskfull.get('edge_sheds', 0)} at the serving edge), "
                f"{diskfull.get('other_errors', 0)} other errors, "
                f"{diskfull.get('lost', 0)} lost after recovery"
            )


def throughput_table(label, results):
    print(f"| {label} | queries/sec | p50 | p99 |")
    print("|---:|---:|---:|---:|")
    for key, row in sorted(
        results.items(),
        key=lambda kv: int(kv[0].rsplit("_", 1)[-1]),
    ):
        n = key.rsplit("_", 1)[-1]
        qps = row.get("qps", 0.0)
        p50 = row.get("p50_ns", 0)
        p99 = row.get("p99_ns", 0)
        print(f"| {n} | {qps:.1f} | {p50 / 1e6:.3f} ms | {p99 / 1e6:.3f} ms |")


if __name__ == "__main__":
    main(sys.argv[1:] or ["BENCH_paillier.json", "BENCH_runtime.json", "BENCH_e2e.json"])
